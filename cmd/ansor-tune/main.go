// Command ansor-tune tunes one operator, subgraph, or whole network from
// the command line and prints the best program / latencies found.
//
// Examples:
//
//	ansor-tune -workload GMM.s1 -trials 1000
//	ansor-tune -workload ConvLayer.s2 -target gpu -trials 500
//	ansor-tune -network mobilenet-v2 -batch 16 -trials 200
//	ansor-tune -workload GMM.s1 -log tune.json          # record the tuning log
//	ansor-tune -workload GMM.s1 -resume tune.json       # continue a killed run
//	ansor-tune -workload GMM.s1 -apply-best tune.json   # serve the best schedule, zero trials
//	ansor-tune -workload GMM.s1 -registry-url http://127.0.0.1:8421         # publish to a shared registry
//	ansor-tune -workload GMM.s1 -registry-url http://127.0.0.1:8421 -apply-best registry
//	ansor-tune -workload GMM.s1 -warm-start tune.json                        # start informed by a local log
//	ansor-tune -workload GMM.s1 -registry-url http://127.0.0.1:8421 -warm-start registry
//	ansor-tune -workload GMM.s1 -warm-start tune.json,http://127.0.0.1:8421  # merged warm start
//	ansor-tune -workload GMM.s1 -warm-start big.json -warm-start-limit 100   # bounded warm start
//	ansor-tune -workload GMM.s1 -fleet-url http://127.0.0.1:8521             # measure on a worker fleet
//	ansor-tune -workload GMM.s1 -events events.jsonl                         # JSONL tuning narration
//	ansor-tune -list
//
// Fleet measurement (-fleet-url) needs a broker (`ansor-registry
// fleet`) and at least one `ansor-worker` for the tuned target; the
// tuning output is bit-identical to a local run at any worker count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/ansor"
	"repro/internal/prof"
	"repro/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "ansor-tune: %v\n", err)
		os.Exit(1)
	}
}

// run is the whole CLI; main only maps its error to an exit code, so
// tests drive the binary in-process.
func run(args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("ansor-tune", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file; the search phases are pprof-labeled, so `go tool pprof -tagfocus phase=score` isolates one stage")
		memProfile = fs.String("memprofile", "", "write an allocation profile (live heap + cumulative allocs) to this file at exit")
		workload   = fs.String("workload", "", "single op or subgraph key, e.g. GMM.s1, ConvLayer.s0")
		network    = fs.String("network", "", "network name: resnet-50, mobilenet-v2, 3d-resnet-18, dcgan, bert")
		batch      = fs.Int("batch", 1, "batch size")
		target     = fs.String("target", "intel", "target: intel, intel-avx512, arm, gpu")
		trials     = fs.Int("trials", 1000, "measurement trials (per task for networks)")
		perRound   = fs.Int("per-round", 64, "measurements per search round")
		seed       = fs.Int64("seed", 1, "random seed")
		workers    = fs.Int("workers", 0, "worker goroutines for the tuning pipeline (0 = GOMAXPROCS); results are identical for any value")
		logTo      = fs.String("log", "", "append measurement records to this tuning log (one JSON record per line)")
		resume     = fs.String("resume", "", "resume from this tuning log: logged programs replay without re-measuring; with the same seed/options the run is bit-identical to an uninterrupted one (implies -log to the same file unless -log is set)")
		warmStart  = fs.String("warm-start", "", "seed each task's cost model and best pool from tuning history before the first round; takes a log/registry file, a registry server URL (task-filtered fleet history), the literal 'registry' for the -registry-url server, or a comma-separated mix; sibling-target records transfer into the model only, time-calibrated and discounted")
		applyBest  = fs.String("apply-best", "", "skip searching: replay the best recorded schedule for the workload/network with zero trials; takes a log/registry file, a registry server URL, or the literal 'registry' for the -registry-url server")
		wsLimit    = fs.Int("warm-start-limit", 0, "cap the records each warm-start source contributes per task, subsampled training-representatively (top-k fastest + slow tail); 0 = unbounded")
		regURL     = fs.String("registry-url", "", "publish every fresh measurement to this ansor-registry server (e.g. http://127.0.0.1:8421) so concurrent tuning jobs accumulate one shared registry")
		fleetURL   = fs.String("fleet-url", "", "measure on a distributed worker fleet via this broker (ansor-registry fleet) instead of in-process; output is bit-identical to a local run at any worker count")
		pooledCal  = fs.Bool("pooled-calibration", false, "pull the -registry-url server's fleet-pooled cross-target time calibration at startup; fills calibration gaps for warm starts and foreign-clock fleet results where this run has no local overlap (training-data weighting only; measured bests are untouched)")
		events     = fs.String("events", "", "stream the structured tuning narration as JSONL to this file path or the literal 'stderr': task/round/phase boundaries, scheduler waves, model training, best improvements, warm-start summaries, and per-batch fleet timelines joined by trace IDs; non-blocking and drop-on-full, so tuning output is bit-identical with or without it")
		list       = fs.Bool("list", false, "list available workloads and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil && retErr == nil {
			retErr = err
		}
	}()

	if *list {
		fmt.Fprintln(stdout, "single operators and subgraphs (use with -workload):")
		var keys []string
		for _, w := range append(workloads.SingleOps(*batch), workloads.Subgraphs(*batch)...) {
			keys = append(keys, w.Key)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintln(stdout, "  ", k)
		}
		fmt.Fprintln(stdout, "networks (use with -network): resnet-50 mobilenet-v2 3d-resnet-18 dcgan bert")
		return nil
	}

	var tgt ansor.Target
	switch *target {
	case "intel":
		tgt = ansor.TargetIntelCPU(false)
	case "intel-avx512":
		tgt = ansor.TargetIntelCPU(true)
	case "arm":
		tgt = ansor.TargetARMCPU()
	case "gpu":
		tgt = ansor.TargetNVIDIAGPU()
	default:
		return fmt.Errorf("unknown target %q", *target)
	}
	if *resume != "" && *logTo == "" {
		// A resumed run keeps extending the same durable log, so the
		// next resume picks up where this one stops.
		*logTo = *resume
	}
	if *applyBest == "registry" {
		if *regURL == "" {
			return fmt.Errorf("-apply-best registry needs -registry-url")
		}
		*applyBest = *regURL
	}
	opts := ansor.TuningOptions{
		Trials: *trials, MeasuresPerRound: *perRound, Seed: *seed, Workers: *workers,
		RecordTo: *logTo, ResumeFrom: *resume,
		WarmStartFrom: *warmStart, WarmStartLimit: *wsLimit, ApplyHistoryBest: *applyBest,
		RegistryURL: *regURL, FleetURL: *fleetURL, PooledCalibration: *pooledCal,
		EventsTo: *events,
	}
	if *pooledCal && *regURL == "" {
		return fmt.Errorf("-pooled-calibration needs -registry-url")
	}
	if *logTo != "" {
		// The scheduler checkpoint lives beside the log so a network
		// resume can verify (not just trust) that options and workloads
		// did not drift; single-task tuning ignores it.
		opts.CheckpointPath = *logTo + ".ckpt"
	}

	switch {
	case *network != "":
		net, err := ansor.BuiltinNetwork(*network, *batch)
		if err != nil {
			return err
		}
		if *applyBest != "" {
			fmt.Fprintf(stdout, "serving %s (batch %d) on %s from %s\n", net.Name, *batch, tgt.Name, *applyBest)
		} else {
			fmt.Fprintf(stdout, "tuning %s (batch %d) on %s: %d tasks, ~%d trials/task\n",
				net.Name, *batch, tgt.Name, len(net.Tasks), *trials)
		}
		res, err := ansor.TuneNetwork(net, tgt, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "end-to-end latency: %.6g s (%d trials)\n", res.Latency, res.Trials)
		var names []string
		for n := range res.TaskLatencies {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(stdout, "  %-40s %.6g s\n", n, res.TaskLatencies[n])
		}
	case *workload != "":
		all := append(workloads.SingleOps(*batch), workloads.Subgraphs(*batch)...)
		var dag *ansor.DAG
		for _, w := range all {
			if w.Key == *workload {
				dag = w.Build()
			}
		}
		if dag == nil {
			return fmt.Errorf("unknown workload %q (try -list)", *workload)
		}
		tuner, err := ansor.NewTuner(ansor.NewTask(*workload, dag, tgt), opts)
		if err != nil {
			return err
		}
		if *applyBest != "" {
			fmt.Fprintf(stdout, "serving %s (batch %d) on %s from %s\n", *workload, *batch, tgt.Name, *applyBest)
		} else {
			fmt.Fprintf(stdout, "tuning %s (batch %d) on %s, %d sketches, %d trials\n",
				*workload, *batch, tgt.Name, len(tuner.Sketches()), *trials)
		}
		best, err := tuner.Tune()
		if err != nil {
			tuner.Close()
			return err
		}
		fmt.Fprintf(stdout, "best: %.6g s, %.1f GFLOP/s (%d fresh trials)\n\n%s",
			best.Seconds, best.GFLOPS, tuner.Trials(), best.Print())
		if err := tuner.Close(); err != nil {
			return fmt.Errorf("tuning log: %w", err)
		}
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -workload, -network, or -list")
	}
	return nil
}
