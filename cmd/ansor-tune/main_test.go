package main

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/measure"
)

// exec drives the CLI in-process and returns its stdout.
func exec(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, errb.String())
	}
	return out.String()
}

func TestListSmoke(t *testing.T) {
	out := exec(t, "-list")
	for _, want := range []string{"GMM.s1", "ConvLayer", "networks (use with -network)"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestFlagAndInputErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-target", "vax"}, &out, &errb); err == nil {
		t.Error("unknown target accepted")
	}
	if err := run([]string{"-workload", "NopeNope"}, &out, &errb); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{}, &out, &errb); err == nil {
		t.Error("no action should error")
	}
	if err := run([]string{"-not-a-flag"}, &out, &errb); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-workload", "GMM.s1", "-apply-best",
		filepath.Join(t.TempDir(), "empty.json")}, &out, &errb); err == nil {
		t.Error("apply-best from an empty log should error")
	}
}

// TestTuneRecordResumeRoundTrip runs the CLI end to end: tune with -log,
// resume with -resume (continuing the same file), then serve the result
// with -apply-best at zero fresh trials.
func TestTuneRecordResumeRoundTrip(t *testing.T) {
	logFile := filepath.Join(t.TempDir(), "tune.json")
	common := []string{"-workload", "GMM.s1", "-per-round", "8", "-seed", "5"}

	out := exec(t, append(common, "-trials", "16", "-log", logFile)...)
	if !strings.Contains(out, "(16 fresh trials)") {
		t.Fatalf("first run should spend 16 fresh trials:\n%s", out)
	}
	log, err := measure.LoadFile(logFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Records) == 0 {
		t.Fatal("-log wrote no records")
	}

	// Resume with a larger budget: the logged prefix replays for free.
	out = exec(t, append(common, "-trials", "24", "-resume", logFile)...)
	if !strings.Contains(out, "(8 fresh trials)") {
		t.Fatalf("resumed run should spend only the 8-trial continuation:\n%s", out)
	}
	grown, err := measure.LoadFile(logFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(grown.Records) <= len(log.Records) {
		t.Error("-resume should keep appending to the log (implied -log)")
	}

	// Serve the best recorded schedule without searching.
	out = exec(t, append(common, "-apply-best", logFile)...)
	if !strings.Contains(out, "(0 fresh trials)") {
		t.Fatalf("apply-best must spend zero trials:\n%s", out)
	}
	if !strings.Contains(out, "best:") {
		t.Fatalf("apply-best printed no program:\n%s", out)
	}

	// The served best matches the log's fastest record for the task.
	best := -1.0
	for _, rec := range grown.Records {
		if rec.Task == "GMM.s1" && (best < 0 || rec.Seconds < best) {
			best = rec.Seconds
		}
	}
	if best < 0 {
		t.Fatal("no GMM.s1 records in log")
	}
	if !strings.Contains(out, fmt.Sprintf("%.6g", best)) {
		t.Errorf("apply-best output does not show the best recorded time %g:\n%s", best, out)
	}
}
