package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/measure"
	"repro/internal/registry"
	"repro/internal/regserver"
	"repro/internal/sim"
)

// exec drives the CLI in-process and returns its stdout.
func exec(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, errb.String())
	}
	return out.String()
}

func TestListSmoke(t *testing.T) {
	out := exec(t, "-list")
	for _, want := range []string{"GMM.s1", "ConvLayer", "networks (use with -network)"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestFlagAndInputErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-target", "vax"}, &out, &errb); err == nil {
		t.Error("unknown target accepted")
	}
	if err := run([]string{"-workload", "NopeNope"}, &out, &errb); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{}, &out, &errb); err == nil {
		t.Error("no action should error")
	}
	if err := run([]string{"-not-a-flag"}, &out, &errb); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-workload", "GMM.s1", "-apply-best",
		filepath.Join(t.TempDir(), "empty.json")}, &out, &errb); err == nil {
		t.Error("apply-best from an empty log should error")
	}
}

// TestTuneRecordResumeRoundTrip runs the CLI end to end: tune with -log,
// resume with -resume (continuing the same file), then serve the result
// with -apply-best at zero fresh trials.
func TestTuneRecordResumeRoundTrip(t *testing.T) {
	logFile := filepath.Join(t.TempDir(), "tune.json")
	common := []string{"-workload", "GMM.s1", "-per-round", "8", "-seed", "5"}

	out := exec(t, append(common, "-trials", "16", "-log", logFile)...)
	if !strings.Contains(out, "(16 fresh trials)") {
		t.Fatalf("first run should spend 16 fresh trials:\n%s", out)
	}
	log, err := measure.LoadFile(logFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Records) == 0 {
		t.Fatal("-log wrote no records")
	}

	// Resume with a larger budget: the logged prefix replays for free.
	out = exec(t, append(common, "-trials", "24", "-resume", logFile)...)
	if !strings.Contains(out, "(8 fresh trials)") {
		t.Fatalf("resumed run should spend only the 8-trial continuation:\n%s", out)
	}
	grown, err := measure.LoadFile(logFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(grown.Records) <= len(log.Records) {
		t.Error("-resume should keep appending to the log (implied -log)")
	}

	// Serve the best recorded schedule without searching.
	out = exec(t, append(common, "-apply-best", logFile)...)
	if !strings.Contains(out, "(0 fresh trials)") {
		t.Fatalf("apply-best must spend zero trials:\n%s", out)
	}
	if !strings.Contains(out, "best:") {
		t.Fatalf("apply-best printed no program:\n%s", out)
	}

	// The served best matches the log's fastest record for the task.
	best := -1.0
	for _, rec := range grown.Records {
		if rec.Task == "GMM.s1" && (best < 0 || rec.Seconds < best) {
			best = rec.Seconds
		}
	}
	if best < 0 {
		t.Fatal("no GMM.s1 records in log")
	}
	if !strings.Contains(out, fmt.Sprintf("%.6g", best)) {
		t.Errorf("apply-best output does not show the best recorded time %g:\n%s", best, out)
	}
}

// TestRegistryServerRoundTrip is the service acceptance path: two
// tuning runs for disjoint tasks publish to one registry server, whose
// accumulated registry then serves every task with zero fresh trials —
// bit-identical to the in-process registry path over the same logs.
func TestRegistryServerRoundTrip(t *testing.T) {
	srv := regserver.New(nil)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	dir := t.TempDir()
	logs := map[string]string{
		"GMM.s1": filepath.Join(dir, "a.json"),
		"C1D.s0": filepath.Join(dir, "b.json"),
	}
	// Two tuning jobs (in-process stand-ins for two OS processes), each
	// recording locally AND publishing to the shared server.
	for wl, logFile := range logs {
		out := exec(t, "-workload", wl, "-trials", "16", "-per-round", "8", "-seed", "5",
			"-log", logFile, "-registry-url", hs.URL)
		if !strings.Contains(out, "(16 fresh trials)") {
			t.Fatalf("%s: expected a fresh 16-trial tune:\n%s", wl, out)
		}
	}

	// The server accumulated both jobs: its registry equals the merge of
	// the local logs, record for record.
	want := registry.New()
	for _, logFile := range logs {
		l, err := measure.LoadFile(logFile)
		if err != nil {
			t.Fatal(err)
		}
		want.AddLog(l)
	}
	got := srv.Registry()
	if len(got.Keys()) == 0 || fmt.Sprint(got.Keys()) != fmt.Sprint(want.Keys()) {
		t.Fatalf("server registry keys diverged:\nwant %v\n got %v", want.Keys(), got.Keys())
	}
	for _, k := range want.Keys() {
		a, _ := want.Lookup(k)
		b, _ := got.Lookup(k)
		if a.Seconds != b.Seconds || a.Noiseless != b.Noiseless || !bytes.Equal(a.Steps, b.Steps) {
			t.Fatalf("server entry %v diverged from local merge:\nwant %+v\n got %+v", k, a, b)
		}
	}

	// Serving from the server is bit-identical to serving from the local
	// merged registry, at zero fresh trials, for every task.
	mergedFile := filepath.Join(dir, "merged.json")
	if err := want.SaveFile(mergedFile); err != nil {
		t.Fatal(err)
	}
	for wl := range logs {
		common := []string{"-workload", wl, "-seed", "5"}
		fromFile := exec(t, append(common, "-apply-best", mergedFile)...)
		fromServer := exec(t, append(common, "-apply-best", hs.URL)...)
		// Sentinel spelling: -apply-best registry + -registry-url.
		fromSentinel := exec(t, append(common, "-apply-best", "registry", "-registry-url", hs.URL)...)
		norm := func(s string) string {
			// Drop the header naming the source; everything below —
			// time, GFLOPS, trial count, program listing — must match
			// byte for byte.
			i := strings.Index(s, "best:")
			if i < 0 {
				t.Fatalf("no best program in output:\n%s", s)
			}
			return s[i:]
		}
		if norm(fromFile) != norm(fromServer) || norm(fromServer) != norm(fromSentinel) {
			t.Errorf("%s: served program diverged between file and server:\nfile:\n%s\nserver:\n%s",
				wl, fromFile, fromServer)
		}
		if !strings.Contains(fromServer, "(0 fresh trials)") {
			t.Errorf("%s: serving from the registry server must cost zero trials:\n%s", wl, fromServer)
		}
	}

	// Resuming against a FRESH server must seed it with the log's
	// replayed records: cached replays never re-enter the recorder, so
	// without seeding the server would only see the continuation.
	srv2 := regserver.New(nil)
	hs2 := httptest.NewServer(srv2.Handler())
	defer hs2.Close()
	out := exec(t, "-workload", "GMM.s1", "-trials", "16", "-per-round", "8", "-seed", "5",
		"-resume", logs["GMM.s1"], "-registry-url", hs2.URL)
	if !strings.Contains(out, "(0 fresh trials)") {
		t.Fatalf("fully logged resume should cost zero fresh trials:\n%s", out)
	}
	if srv2.Registry().Len() == 0 {
		t.Fatal("resume published nothing: the fresh server missed the replayed records")
	}
	for _, k := range want.Keys() {
		if k.Workload != "GMM.s1" {
			continue
		}
		a, _ := want.Lookup(k)
		b, ok := srv2.Registry().Lookup(k)
		if !ok || a.Seconds != b.Seconds || !bytes.Equal(a.Steps, b.Steps) {
			t.Fatalf("seeded server entry %v diverged: %+v vs %+v", k, a, b)
		}
	}

	// A bad sentinel spelling fails fast.
	var outb, errb bytes.Buffer
	if err := run([]string{"-workload", "GMM.s1", "-apply-best", "registry"}, &outb, &errb); err == nil {
		t.Error("-apply-best registry without -registry-url should error")
	}
	if err := run([]string{"-workload", "GMM.s1", "-registry-url", "http://127.0.0.1:1"}, &outb, &errb); err == nil {
		t.Error("an unreachable registry server should fail fast")
	}
}

// TestNetworkCheckpointResume covers the scheduler-checkpoint wiring:
// a network tune with -log writes a checkpoint beside the log, an
// honest resume verifies against it, and a tampered checkpoint — state
// or meta — turns silent drift into an error.
func TestNetworkCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	logFile := filepath.Join(dir, "net.json")
	ckpt := logFile + ".ckpt"
	common := []string{"-network", "dcgan", "-per-round", "4", "-seed", "3"}

	exec(t, append(common, "-trials", "4", "-log", logFile)...)
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("network tune with -log should write a checkpoint beside the log: %v", err)
	}

	// Honest resume: replay passes verification and extends the run.
	out := exec(t, append(common, "-trials", "8", "-resume", logFile)...)
	if !strings.Contains(out, "end-to-end latency") {
		t.Fatalf("resume failed:\n%s", out)
	}

	readCkpt := func() map[string]interface{} {
		data, err := os.ReadFile(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		var c map[string]interface{}
		if err := json.Unmarshal(data, &c); err != nil {
			t.Fatal(err)
		}
		return c
	}
	writeCkpt := func(c map[string]interface{}) {
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ckpt, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Tamper with the gradient state: the replayed run no longer passes
	// through the checkpointed allocations, so resume must refuse.
	tampered := readCkpt()
	hist := tampered["sched"].(map[string]interface{})["history"].([]interface{})
	hist[0].([]interface{})[0] = 1e-9
	writeCkpt(tampered)
	var out2, errb bytes.Buffer
	err := run(append(common, "-trials", "8", "-resume", logFile), &out2, &errb)
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("tampered history should fail VerifyReplay, got %v", err)
	}

	// Tamper with the meta: option drift is rejected before tuning.
	tampered = readCkpt()
	tampered["seed"] = float64(99)
	writeCkpt(tampered)
	err = run(append(common, "-trials", "8", "-resume", logFile), &out2, &errb)
	if err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("drifted seed should be rejected, got %v", err)
	}
	tampered = readCkpt()
	tampered["network"] = "ResNet-50"
	writeCkpt(tampered)
	err = run(append(common, "-trials", "8", "-resume", logFile), &out2, &errb)
	if err == nil || !strings.Contains(err.Error(), "network") {
		t.Fatalf("drifted network should be rejected, got %v", err)
	}
}

// TestWarmStartCLIRoundTrip: -warm-start accepts a log file, a server
// URL, and the literal "registry"; the warm-started run still reports a
// full fresh-trial tune (warm start costs no budget) and "registry"
// without -registry-url fails fast.
func TestWarmStartCLIRoundTrip(t *testing.T) {
	srv := regserver.New(nil)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	dir := t.TempDir()
	logFile := filepath.Join(dir, "history.json")
	exec(t, "-workload", "GMM.s1", "-trials", "16", "-per-round", "8", "-seed", "5",
		"-log", logFile, "-registry-url", hs.URL)
	if srv.Registry().Len() == 0 {
		t.Fatal("seed run published nothing")
	}

	for _, args := range [][]string{
		{"-workload", "GMM.s1", "-trials", "8", "-per-round", "8", "-seed", "6", "-warm-start", logFile},
		{"-workload", "GMM.s1", "-trials", "8", "-per-round", "8", "-seed", "6", "-warm-start", hs.URL},
		{"-workload", "GMM.s1", "-trials", "8", "-per-round", "8", "-seed", "6",
			"-registry-url", hs.URL, "-warm-start", "registry"},
		{"-workload", "GMM.s1", "-trials", "8", "-per-round", "8", "-seed", "6",
			"-warm-start", logFile + "," + hs.URL},
	} {
		out := exec(t, args...)
		if !strings.Contains(out, "(8 fresh trials)") {
			t.Fatalf("warm-started run should spend its full fresh budget:\n%s", out)
		}
	}

	var out, errb bytes.Buffer
	if err := run([]string{"-workload", "GMM.s1", "-warm-start", "registry"}, &out, &errb); err == nil {
		t.Error("-warm-start registry without -registry-url must fail")
	}
	if err := run([]string{"-workload", "GMM.s1", "-warm-start", "http://127.0.0.1:1"}, &out, &errb); err == nil {
		t.Error("-warm-start against an unreachable server must fail fast")
	}
}

// TestFleetCLIRoundTrip drives -fleet-url end to end: a broker and two
// mixed-capacity workers run in-process, and the fleet-measured tuning
// output must be byte-identical to the local run's.
func TestFleetCLIRoundTrip(t *testing.T) {
	broker := fleet.NewBroker()
	hs := httptest.NewServer(broker.Handler())
	defer hs.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	machine := sim.IntelXeon() // -target intel
	for i, capy := range []int{2, 4} {
		w := fleet.NewWorker(hs.URL, fmt.Sprintf("cli-w%d", i), machine, capy)
		w.PollInterval = time.Millisecond
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
		}()
	}
	defer wg.Wait()
	defer cancel()

	args := []string{"-workload", "GMM.s1", "-trials", "16", "-per-round", "8", "-seed", "4"}
	local := exec(t, args...)
	viaFleet := exec(t, append(args, "-fleet-url", hs.URL)...)
	if local != viaFleet {
		t.Errorf("fleet-measured CLI output diverged from local:\n--- local\n%s\n--- fleet\n%s", local, viaFleet)
	}
	m, err := fleet.NewClient(hs.URL).Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsCompleted == 0 {
		t.Error("the fleet run should have completed jobs on the broker")
	}

	var out, errb bytes.Buffer
	if err := run([]string{"-workload", "GMM.s1", "-fleet-url", "http://127.0.0.1:1"}, &out, &errb); err == nil {
		t.Error("-fleet-url against an unreachable broker must fail fast")
	}
}

// TestWarmStartLimitCLI: -warm-start-limit caps the absorbed history
// deterministically; the run still spends its full fresh budget.
func TestWarmStartLimitCLI(t *testing.T) {
	dir := t.TempDir()
	logFile := filepath.Join(dir, "history.json")
	exec(t, "-workload", "GMM.s1", "-trials", "16", "-per-round", "8", "-seed", "5", "-log", logFile)

	args := []string{"-workload", "GMM.s1", "-trials", "8", "-per-round", "8", "-seed", "6",
		"-warm-start", logFile, "-warm-start-limit", "4"}
	first := exec(t, args...)
	if !strings.Contains(first, "(8 fresh trials)") {
		t.Fatalf("limited warm start should spend its full fresh budget:\n%s", first)
	}
	if second := exec(t, args...); second != first {
		t.Error("limited warm start must be deterministic across runs")
	}
}
