package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/ir"
	"repro/internal/measure"
	"repro/internal/sim"
	"repro/internal/te"
)

func TestMachineFor(t *testing.T) {
	for flagVal, want := range map[string]string{
		"intel":            "intel-20c-avx2",
		"intel-avx512":     "intel-20c-avx512",
		"arm":              "arm-cortex-a53",
		"gpu":              "nvidia-v100",
		"intel-20c-avx512": "intel-20c-avx512", // model names pass through
	} {
		m, err := machineFor(flagVal)
		if err != nil || m.Name != want {
			t.Errorf("machineFor(%q) = %v, %v; want %s", flagVal, m, err, want)
		}
	}
	if _, err := machineFor("abacus"); err == nil {
		t.Error("unknown target should fail")
	}
}

// TestWorkerCLIServesJobs runs the binary in-process against a live
// broker and checks it measures a real job correctly and shuts down on
// context cancellation.
func TestWorkerCLIServesJobs(t *testing.T) {
	broker := fleet.NewBroker()
	hs := httptest.NewServer(broker.Handler())
	defer hs.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var out, errb bytes.Buffer
	done := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		done <- run(ctx, []string{
			"-broker", hs.URL, "-target", "intel", "-capacity", "2", "-seed", "9",
			"-poll", "1ms",
		}, &out, &errb)
	}()

	// A real single-program job: the worker must replay, lower and time
	// it to exactly the in-process measurer's value.
	b := te.NewBuilder("mm")
	a := b.Input("A", 64, 64)
	b.Matmul(a, 64, true)
	dag := b.MustFinish()
	state := ir.NewState(dag)
	want := measure.New(sim.IntelXeon(), 0, 1).Measure([]*ir.State{state})[0].NoiselessSeconds

	encDAG, err := te.EncodeDAG(dag)
	if err != nil {
		t.Fatal(err)
	}
	encSteps, err := ir.EncodeSteps(state.Steps)
	if err != nil {
		t.Fatal(err)
	}
	cl := fleet.NewClient(hs.URL)
	ack, err := cl.Submit(fleet.JobSpec{
		Target: "intel-20c-avx2", Task: "mm",
		DAG: encDAG, Programs: []json.RawMessage{encSteps},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := cl.Job(ack.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Done {
			if st.Results[0].Err != "" || st.Results[0].Noiseless != want {
				t.Fatalf("worker result %+v, want noiseless %v", st.Results[0], want)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never completed the job")
		}
		time.Sleep(time.Millisecond)
	}

	cancel()
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("worker exited with %v", err)
	}
	if !strings.Contains(out.String(), "serving target intel-20c-avx2") ||
		!strings.Contains(out.String(), "stopping") {
		t.Errorf("missing lifecycle output:\n%s", out.String())
	}
}

func TestWorkerCLIFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-target", "abacus"}, &out, &errb); err == nil {
		t.Error("unknown -target should fail")
	}
	if err := run(context.Background(), []string{"-capacity", "0"}, &out, &errb); err == nil {
		t.Error("non-positive -capacity should fail")
	}
	if err := run(context.Background(), []string{"-broker", "http://127.0.0.1:1"}, &out, &errb); err == nil {
		t.Error("unreachable broker should fail the startup ping")
	}
}
