// Command ansor-worker is one measurement device of the distributed
// fleet: it hosts an analytic machine model (the stand-in for one
// physical board of the paper's measurement farm), polls the broker for
// leased slices of measurement batches, times each program, and posts
// the results back. Run as many workers as you have "boards" — the
// broker shards batches across every worker registered for the job's
// target, requeues slices when a worker dies mid-batch, and tuning
// output stays bit-identical to a local run regardless (see DESIGN.md,
// "Measurement fleet").
//
// Examples:
//
//	ansor-registry fleet -addr 127.0.0.1:8521
//	ansor-worker -broker http://127.0.0.1:8521 -target intel -capacity 4 -seed 1
//	ansor-worker -broker http://127.0.0.1:8521 -target gpu -capacity 8 -seed 2
//	ansor-worker -broker http://:s3cret@127.0.0.1:8521 -target arm   # token-guarded broker
//	ansor-tune -workload GMM.s1 -fleet-url http://127.0.0.1:8521
//
// Workers never roll measurement noise (that is derived by the
// submitting run from its tuning seed) and never record tuning logs
// (records belong to the submitting run); a worker is a pure
// program-timing service.
//
// With near-sibling dispatch (-max-dispatch-distance, default 1) an
// idle worker also volunteers for jobs of a compatible sibling target —
// e.g. an avx512 worker drains an avx2 queue. The sibling job is timed
// on the job target's own analytic model whenever this build knows it,
// so the reported time is bit-identical to a native measurement and only
// tagged measured_on for provenance; unknown targets are timed on the
// hosted model instead and tagged with the clock's name, which makes the
// submitting run calibrate the time and keep it training-only (see
// DESIGN.md, "Heterogeneous fleet").
//
// The worker's own side of the fleet is observable: -metrics-addr
// serves /metrics (JSON: leases taken, programs measured, sibling
// grants, program errors, quarantine state), /metrics/prom (Prometheus
// text exposition; also /metrics?format=prometheus) and /healthz, and
// -events streams worker_lease/worker_result JSONL events that join the
// submitting run's per-batch timeline through the trace IDs echoed on
// lease grants (DESIGN.md, "Observability").
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/regserver"
	"repro/internal/sim"
)

// startPprof serves net/http/pprof's /debug/pprof endpoints on addr
// when non-empty. The listener is token-free and off by default: point
// it at localhost (or a firewalled interface) only while profiling.
func startPprof(addr string, stderr io.Writer) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(stderr, "ansor-worker: pprof server: %v\n", err)
		}
	}()
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "ansor-worker: %v\n", err)
		os.Exit(1)
	}
}

// machineFor resolves a -target flag value: the CLI aliases ansor-tune
// uses, or a machine-model name (sim.Machine.Name) directly.
func machineFor(target string) (*sim.Machine, error) {
	switch target {
	case "intel":
		return sim.IntelXeon(), nil
	case "intel-avx512":
		return sim.IntelXeonAVX512(), nil
	case "arm":
		return sim.ARMCortexA53(), nil
	case "gpu":
		return sim.NVIDIAV100(), nil
	}
	if m, ok := sim.ByName(target); ok {
		return m, nil
	}
	return nil, fmt.Errorf("unknown target %q (want intel, intel-avx512, arm, gpu, or a machine-model name)", target)
}

// run is the whole CLI; main only maps its error to an exit code and
// wires OS signals into ctx, so tests drive the binary in-process.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ansor-worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		broker      = fs.String("broker", "http://127.0.0.1:8521", "measurement broker URL (ansor-registry fleet); a bearer token may be embedded as http://:TOKEN@host")
		target      = fs.String("target", "intel", "hosted machine model: intel, intel-avx512, arm, gpu, or a model name like intel-20c-avx2")
		capacity    = fs.Int("capacity", 4, "programs per lease: how much of a batch this worker takes in one bite")
		seed        = fs.Int64("seed", 1, "worker identity seed: distinguishes workers of the same target in the broker's failure accounting (give every worker of a fleet a distinct seed); measurement itself is seed-free")
		id          = fs.String("id", "", "explicit worker id (default <target>-w<seed>)")
		poll        = fs.Duration("poll", 25*time.Millisecond, "pacing delay between lease polls when long-polling is off or unsupported by the broker")
		leaseWait   = fs.Duration("lease-wait", 10*time.Second, "broker-side long-poll per lease request: an idle worker blocks at the broker and starts measuring the instant work arrives (negative = classic interval polling)")
		maxDist     = fs.Int("max-dispatch-distance", 1, "largest target distance this worker volunteers for when its native queue is idle: 0 = exact target only, 1 = same core family with a different vector ISA (e.g. avx2 <-> avx512); the broker caps it with its own -max-dispatch-distance")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for CPU/heap profiles; token-free, off when empty")
		metricsAddr = fs.String("metrics-addr", "", "serve the worker's observability endpoints on this address (e.g. localhost:8531): /metrics (JSON: leases taken, programs measured, sibling grants, program errors, quarantine state), /metrics/prom or /metrics?format=prometheus (Prometheus text exposition), and /healthz; off when empty")
		events      = fs.String("events", "", "stream structured JSONL lifecycle events (worker_lease, worker_result) to this file path or the literal \"stderr\"; non-blocking and drop-on-full, off when empty")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	startPprof(*pprofAddr, stderr)
	if *capacity < 1 {
		return fmt.Errorf("-capacity must be positive, got %d", *capacity)
	}
	m, err := machineFor(*target)
	if err != nil {
		return err
	}
	wid := *id
	if wid == "" {
		wid = fmt.Sprintf("%s-w%d", m.Name, *seed)
	}
	if *maxDist < 0 {
		return fmt.Errorf("-max-dispatch-distance must be >= 0, got %d", *maxDist)
	}
	w := fleet.NewWorker(*broker, wid, m, *capacity)
	w.PollInterval = *poll
	w.LeaseWait = *leaseWait
	w.MaxDistance = *maxDist
	if *events != "" {
		sink, err := obs.OpenSink(*events)
		if err != nil {
			return fmt.Errorf("-events %s: %w", *events, err)
		}
		defer sink.Close()
		w.Obs.Events = sink
	}
	if *metricsAddr != "" {
		go func() {
			if err := http.ListenAndServe(*metricsAddr, w.MetricsHandler()); err != nil {
				fmt.Fprintf(stderr, "ansor-worker: metrics server: %v\n", err)
			}
		}()
	}
	if err := w.Ping(); err != nil {
		return err
	}
	// Never echo the broker URL verbatim: it may embed the auth token.
	display, _ := regserver.SplitTokenURL(*broker)
	fmt.Fprintf(stdout, "ansor-worker: %s serving target %s (capacity %d) from %s\n",
		wid, m.Name, *capacity, display)
	err = w.Run(ctx)
	fmt.Fprintf(stdout, "ansor-worker: %s stopping\n", wid)
	return err
}
