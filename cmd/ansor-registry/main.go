// Command ansor-registry serves one shared best-schedule registry to
// many concurrent tuning jobs: `ansor-tune -registry-url` publishes
// every fresh measurement here, and `-apply-best` can serve schedules
// straight from the accumulated database (see DESIGN.md, "Registry
// service").
//
// Examples:
//
//	ansor-registry serve -addr 127.0.0.1:8421 -store registry.json
//	ansor-registry serve -auth-token s3cret                 # publishes need the bearer token
//	ansor-registry serve -compact-over 10000000             # auto-compact the store past ~10MB
//	ansor-registry serve -tls-cert srv.pem -tls-key srv.key # serve HTTPS
//	ansor-registry serve -publish-quota 600                 # per-publisher records/minute, else 429
//	ansor-registry serve -max-keys 100000                   # bound registry memory (evict idle keys)
//	ansor-registry serve -best-cache 0                      # disable the /v1/best response cache
//	ansor-registry compact -store registry.json -top-k 10   # bound a long-lived store/log
//	ansor-registry fleet -addr 127.0.0.1:8521               # host a measurement broker
//	ansor-worker -broker http://127.0.0.1:8521 -target intel -capacity 4 -seed 1
//	ansor-tune -workload GMM.s1 -fleet-url http://127.0.0.1:8521   # measure on the fleet
//	ansor-tune -workload GMM.s1 -registry-url http://127.0.0.1:8421
//	ansor-tune -workload GMM.s1 -registry-url http://:s3cret@127.0.0.1:8421  # token in the URL
//	ansor-tune -workload GMM.s1 -registry-url http://127.0.0.1:8421 -apply-best registry
//	ansor-tune -workload GMM.s1 -registry-url http://127.0.0.1:8421 -warm-start registry
//	ansor-bench -apply-best http://127.0.0.1:8421   # print the server's registry
//	curl http://127.0.0.1:8421/metrics              # registry health (JSON)
//	curl http://127.0.0.1:8421/metrics/prom         # Prometheus text exposition
//	curl http://127.0.0.1:8521/metrics/prom         # broker metrics, same format
//
// Both verbs serve their /metrics JSON payload in Prometheus text
// exposition too, at /metrics/prom or /metrics?format=prometheus; the
// broker additionally narrates fleet lifecycle events (batch leased /
// measured, lease requeues, quarantines) as JSONL via fleet -events
// (DESIGN.md, "Observability").
//
// The store file is append-durable: every record that improves the
// registry is appended immediately (the measure.Recorder semantics of
// tuning logs), and a periodic snapshot compacts the file to the
// current best set. Shutdown on SIGINT/SIGTERM is graceful: in-flight
// requests drain and a final snapshot is written.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/regserver"
)

// startPprof serves net/http/pprof's /debug/pprof endpoints on addr
// when non-empty. The listener is token-free and off by default: point
// it at localhost (or a firewalled interface) only while profiling.
// It is separate from the service listener, so profiling never rides
// the (possibly token-guarded) API port.
func startPprof(addr string, stderr io.Writer) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(stderr, "ansor-registry: pprof server: %v\n", err)
		}
	}()
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "ansor-registry: %v\n", err)
		os.Exit(1)
	}
}

// run is the whole CLI; main only maps its error to an exit code and
// wires OS signals into ctx, so tests drive the binary in-process.
// onReady, when non-nil, receives the bound address once the server is
// listening.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, onReady func(addr string)) error {
	verb := "serve"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		verb = args[0]
		args = args[1:]
	}
	switch verb {
	case "serve":
		return runServe(ctx, args, stdout, stderr, onReady)
	case "compact":
		return runCompact(args, stdout, stderr)
	case "fleet":
		return runFleet(ctx, args, stdout, stderr, onReady)
	default:
		return fmt.Errorf("unknown verb %q (want serve, compact, or fleet)", verb)
	}
}

// runFleet hosts a measurement broker: tuning jobs submit batches with
// `-fleet-url`, ansor-worker processes lease and measure them. The
// broker is deliberately memoryless (jobs are transient; the submitter
// owns the programs), so unlike `serve` there is no store and nothing
// to snapshot — shutdown just drains in-flight requests.
func runFleet(ctx context.Context, args []string, stdout, stderr io.Writer, onReady func(addr string)) error {
	fs := flag.NewFlagSet("ansor-registry fleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:8521", "address to listen on")
		leaseTTL    = fs.Duration("lease-ttl", 30*time.Second, "how long a worker may hold a lease before its slice is requeued on another worker")
		maxFailures = fs.Int("max-failures", 3, "expired leases before a worker is quarantined (0 = never)")
		authToken   = fs.String("auth-token", "", "require `Authorization: Bearer <token>` on job submission, leases and results (empty = open); clients embed it as http://:TOKEN@host")
		maxDist     = fs.Int("max-dispatch-distance", 1, "largest target distance near-sibling dispatch may bridge when a worker's native queue is idle: 0 = exact target match only, 1 = same core family with a different vector ISA (e.g. avx2 <-> avx512), 2 = same device class; CPU <-> GPU never transfers. Each grant uses min(broker, worker)")
		leaseTarget = fs.Duration("lease-target", 2*time.Second, "size each lease so the worker finishes it in about this long, from its observed programs/sec EWMA — fast workers take bigger bites, slow ones smaller (0 = fixed -capacity-sized leases)")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for CPU/heap profiles; token-free, off when empty")
		events      = fs.String("events", "", "stream the broker's fleet lifecycle events as JSONL to this file path or the literal 'stderr': batch_leased, batch_measured, fleet_requeue, fleet_quarantine, joined to submitters' timelines by trace IDs; non-blocking and drop-on-full, off when empty")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	startPprof(*pprofAddr, stderr)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	if *maxDist < 0 {
		return fmt.Errorf("fleet: -max-dispatch-distance must be >= 0, got %d", *maxDist)
	}
	if *leaseTarget < 0 {
		return fmt.Errorf("fleet: -lease-target must be >= 0, got %s", *leaseTarget)
	}
	b := fleet.NewBroker()
	b.LeaseTTL = *leaseTTL
	b.MaxFailures = *maxFailures
	b.AuthToken = *authToken
	b.MaxDispatchDistance = *maxDist
	b.LeaseTarget = *leaseTarget
	if *events != "" {
		sink, err := obs.OpenSink(*events)
		if err != nil {
			return fmt.Errorf("fleet: -events %s: %w", *events, err)
		}
		defer sink.Close()
		b.Obs.Events = sink
	}
	fmt.Fprintf(stdout, "ansor-registry: measurement broker listening on %s (lease TTL %s, quarantine after %d failures, dispatch distance <= %d, lease target %s)\n",
		ln.Addr(), *leaseTTL, *maxFailures, *maxDist, *leaseTarget)
	hs := &http.Server{Handler: b.Handler()}
	if onReady != nil {
		onReady(ln.Addr().String())
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		fmt.Fprintf(stdout, "ansor-registry: broker shutting down\n")
		shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// runCompact bounds a store/log file in place: per (workload, target,
// shape) it keeps the top-k fastest records plus a deterministic
// training-representative sample of the tail (measure.Log.Compact),
// written with the same temp+rename discipline as server snapshots so
// a crash mid-compact never loses the original.
//
// Compact is an OFFLINE verb: never run it against the store of a live
// `ansor-registry serve` — the rename would replace the file under the
// server's open append descriptor, and records the server acknowledges
// afterwards would land in the unlinked inode (lost on restart). A
// running server already bounds its own store via periodic snapshots;
// compact exists for archived stores and plain tuning logs.
func runCompact(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ansor-registry compact", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		store = fs.String("store", "registry.json", "store or tuning-log file to compact in place (OFFLINE only: stop any server using this file first — compacting under a live server loses its later appends)")
		topK  = fs.Int("top-k", 10, "records kept per (workload, target, shape): the k fastest plus up to k training-representative samples of the tail")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *topK <= 0 {
		return fmt.Errorf("compact: -top-k must be positive, got %d", *topK)
	}
	if _, err := os.Stat(*store); err != nil {
		// Unlike tuning resume, compacting a missing file is a mistake,
		// not a cold start.
		return fmt.Errorf("compact: %w", err)
	}
	l, err := measure.LoadFile(*store)
	if err != nil {
		return fmt.Errorf("compact %s: %w", *store, err)
	}
	c := l.Compact(*topK)
	tmp := *store + ".tmp"
	if err := c.SaveFile(tmp); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("compact %s: %w", *store, err)
	}
	if err := os.Rename(tmp, *store); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("compact %s: %w", *store, err)
	}
	fmt.Fprintf(stdout, "ansor-registry: compacted %s: %d -> %d records (top-%d per workload/target/shape)\n",
		*store, len(l.Records), len(c.Records), *topK)
	return nil
}

func runServe(ctx context.Context, args []string, stdout, stderr io.Writer, onReady func(addr string)) (err error) {
	fs := flag.NewFlagSet("ansor-registry serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8421", "address to listen on")
		store        = fs.String("store", "registry.json", "durable store: improving records append here immediately; snapshots compact it to the best set (empty = in-memory only)")
		every        = fs.Duration("snapshot-every", 30*time.Second, "interval between store maintenance passes (best-set snapshots, or threshold checks with -compact-over)")
		authToken    = fs.String("auth-token", "", "require `Authorization: Bearer <token>` on record publishes (empty = open); publishers embed it as http://:TOKEN@host in -registry-url and friends")
		compactOver  = fs.Int64("compact-over", 0, "auto-compact the store through measure.Log.Compact whenever it exceeds this many bytes, instead of snapshotting it to the best set — keeps the training-representative slow tail that warm starts want (0 = best-set snapshots)")
		compactTopK  = fs.Int("compact-top-k", 10, "records kept per (workload, target, shape) by -compact-over compaction: the k fastest plus up to k tail samples")
		pprofAddr    = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for CPU/heap profiles; token-free, off when empty")
		tlsCert      = fs.String("tls-cert", "", "serve HTTPS with this PEM certificate (requires -tls-key); clients use https:// URLs")
		tlsKey       = fs.String("tls-key", "", "PEM private key for -tls-cert")
		publishQuota = fs.Int("publish-quota", 0, "max records per minute each publisher identity (bearer token, else remote host) may offer; over-quota publishes get 429 with Retry-After (0 = unlimited). Batches larger than the quota are always refused")
		maxKeys      = fs.Int("max-keys", 0, "bound the in-memory registry to this many keys: past it, publishes evict the least-recently-queried entries (never-queried first; the durable store keeps them until the next snapshot). 0 = unbounded")
		bestCache    = fs.Int("best-cache", regserver.DefaultBestCacheEntries, "entries in the encoded-response cache for /v1/best (pre-marshaled bodies with strong ETags; conditional GETs answer 304). 0 disables caching")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	startPprof(*pprofAddr, stderr)
	if *compactOver < 0 {
		return fmt.Errorf("serve: -compact-over must be >= 0, got %d", *compactOver)
	}
	if *compactTopK <= 0 {
		return fmt.Errorf("serve: -compact-top-k must be positive, got %d", *compactTopK)
	}
	if (*tlsCert == "") != (*tlsKey == "") {
		return fmt.Errorf("serve: -tls-cert and -tls-key must be set together")
	}
	if *publishQuota < 0 {
		return fmt.Errorf("serve: -publish-quota must be >= 0, got %d", *publishQuota)
	}
	if *maxKeys < 0 {
		return fmt.Errorf("serve: -max-keys must be >= 0, got %d", *maxKeys)
	}
	if *bestCache < 0 {
		return fmt.Errorf("serve: -best-cache must be >= 0, got %d", *bestCache)
	}

	// Bind the address before touching the store: a bad -addr must not
	// create (or later snapshot-truncate) the store file.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	var srv *regserver.Server
	if *store != "" {
		if srv, err = regserver.Open(*store); err != nil {
			return err
		}
	} else {
		srv = regserver.New(nil)
	}
	srv.AuthToken = *authToken
	srv.SetBestCache(*bestCache)
	if *publishQuota > 0 {
		srv.EnableQuota(*publishQuota)
	}
	if *maxKeys > 0 {
		// Set before the handler serves traffic: the registry reads the
		// bound without synchronization.
		srv.Registry().MaxKeys = *maxKeys
	}
	if *compactOver > 0 && *store != "" {
		srv.EnableAutoCompact(*compactOver, *compactTopK)
	}
	// One Close for every exit path: it writes the final snapshot, so
	// its error must reach the caller.
	defer func() {
		if cerr := srv.Close(); err == nil {
			err = cerr
		}
	}()
	hs := &http.Server{Handler: srv.Handler()}
	scheme := "http"
	if *tlsCert != "" {
		scheme = "https"
	}
	fmt.Fprintf(stdout, "ansor-registry: listening on %s (%s, store %q, %d keys)\n",
		ln.Addr(), scheme, *store, srv.Registry().Len())
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() {
		if *tlsCert != "" {
			serveErr <- hs.ServeTLS(ln, *tlsCert, *tlsKey)
		} else {
			serveErr <- hs.Serve(ln)
		}
	}()

	ticker := time.NewTicker(*every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if err := srv.Snapshot(); err != nil {
				fmt.Fprintf(stderr, "ansor-registry: %v\n", err)
			}
		case err := <-serveErr:
			return err
		case <-ctx.Done():
			fmt.Fprintf(stdout, "ansor-registry: shutting down (%d keys)\n", srv.Registry().Len())
			shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := hs.Shutdown(shctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
				return err
			}
			return nil
		}
	}
}
