// Command ansor-registry serves one shared best-schedule registry to
// many concurrent tuning jobs: `ansor-tune -registry-url` publishes
// every fresh measurement here, and `-apply-best` can serve schedules
// straight from the accumulated database (see DESIGN.md, "Registry
// service").
//
// Examples:
//
//	ansor-registry serve -addr 127.0.0.1:8421 -store registry.json
//	ansor-tune -workload GMM.s1 -registry-url http://127.0.0.1:8421
//	ansor-tune -workload GMM.s1 -registry-url http://127.0.0.1:8421 -apply-best registry
//	ansor-bench -apply-best http://127.0.0.1:8421   # print the server's registry
//
// The store file is append-durable: every record that improves the
// registry is appended immediately (the measure.Recorder semantics of
// tuning logs), and a periodic snapshot compacts the file to the
// current best set. Shutdown on SIGINT/SIGTERM is graceful: in-flight
// requests drain and a final snapshot is written.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/regserver"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "ansor-registry: %v\n", err)
		os.Exit(1)
	}
}

// run is the whole CLI; main only maps its error to an exit code and
// wires OS signals into ctx, so tests drive the server in-process.
// onReady, when non-nil, receives the bound address once the server is
// listening.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, onReady func(addr string)) (err error) {
	if len(args) > 0 && args[0] == "serve" {
		args = args[1:]
	}
	fs := flag.NewFlagSet("ansor-registry serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr  = fs.String("addr", "127.0.0.1:8421", "address to listen on")
		store = fs.String("store", "registry.json", "durable store: improving records append here immediately; snapshots compact it to the best set (empty = in-memory only)")
		every = fs.Duration("snapshot-every", 30*time.Second, "interval between compacting snapshots of the store")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Bind the address before touching the store: a bad -addr must not
	// create (or later snapshot-truncate) the store file.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	var srv *regserver.Server
	if *store != "" {
		if srv, err = regserver.Open(*store); err != nil {
			return err
		}
	} else {
		srv = regserver.New(nil)
	}
	// One Close for every exit path: it writes the final snapshot, so
	// its error must reach the caller.
	defer func() {
		if cerr := srv.Close(); err == nil {
			err = cerr
		}
	}()
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stdout, "ansor-registry: listening on %s (store %q, %d keys)\n",
		ln.Addr(), *store, srv.Registry().Len())
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ticker := time.NewTicker(*every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if err := srv.Snapshot(); err != nil {
				fmt.Fprintf(stderr, "ansor-registry: %v\n", err)
			}
		case err := <-serveErr:
			return err
		case <-ctx.Done():
			fmt.Fprintf(stdout, "ansor-registry: shutting down (%d keys)\n", srv.Registry().Len())
			shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := hs.Shutdown(shctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
				return err
			}
			return nil
		}
	}
}
