package main

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/json"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/measure"
	"repro/internal/regserver"
)

// syncBuffer lets the server goroutine write stdout while the test
// reads it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startServe runs the serve command in-process on an ephemeral port and
// returns its base URL plus a shutdown function that waits for the
// graceful exit (final snapshot included).
func startServe(t *testing.T, extra ...string) (string, *syncBuffer, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	out := &syncBuffer{}
	errCh := make(chan error, 1)
	args := append([]string{"serve", "-addr", "127.0.0.1:0"}, extra...)
	go func() {
		errCh <- run(ctx, args, out, out, func(addr string) { addrCh <- addr })
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, out, func() error {
			cancel()
			select {
			case err := <-errCh:
				return err
			case <-time.After(10 * time.Second):
				return context.DeadlineExceeded
			}
		}
	case err := <-errCh:
		t.Fatalf("serve exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve never became ready")
	}
	panic("unreachable")
}

func TestServeGracefulShutdownAndStore(t *testing.T) {
	store := filepath.Join(t.TempDir(), "registry.json")
	url, out, shutdown := startServe(t, "-store", store, "-snapshot-every", "1h")

	cl := regserver.NewClient(url)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	for i := 3; i >= 1; i-- {
		if _, err := cl.Add(measure.Record{
			Task: "op", Target: "cpu", DAG: "d",
			Steps:   []byte(`[{"i":` + string(rune('0'+i)) + `}]`),
			Seconds: float64(i), Noiseless: float64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if !strings.Contains(out.String(), "listening on") || !strings.Contains(out.String(), "shutting down") {
		t.Errorf("missing lifecycle output:\n%s", out.String())
	}

	// The final snapshot compacted the store to the best set.
	l, err := measure.LoadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Records) != 1 || l.Records[0].Seconds != 1 {
		t.Fatalf("store should hold exactly the best record, got %+v", l.Records)
	}

	// A restart serves the persisted registry.
	url2, _, shutdown2 := startServe(t, "-store", store, "-snapshot-every", "1h")
	defer shutdown2()
	reg, err := regserver.NewClient(url2).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if best, ok := reg.Best("op", "cpu", "d"); !ok || best.Seconds != 1 {
		t.Fatalf("restarted server lost the registry: %+v ok=%v", best, ok)
	}
}

func TestServePeriodicSnapshot(t *testing.T) {
	store := filepath.Join(t.TempDir(), "registry.json")
	url, _, shutdown := startServe(t, "-store", store, "-snapshot-every", "50ms")
	defer shutdown()
	cl := regserver.NewClient(url)
	for i := 5; i >= 1; i-- {
		if _, err := cl.Add(measure.Record{
			Task: "op", Target: "cpu", DAG: "d",
			Steps:   []byte(`[{"i":` + string(rune('0'+i)) + `}]`),
			Seconds: float64(i), Noiseless: float64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Within a few ticks the store must compact to one line while the
	// server keeps running.
	deadline := time.Now().Add(5 * time.Second)
	for {
		l, err := measure.LoadFile(store)
		if err == nil && len(l.Records) == 1 && l.Records[0].Seconds == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("store never compacted: %v (err=%v)", l, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The registry stays intact and appendable after compaction.
	if _, err := cl.Add(measure.Record{
		Task: "op2", Target: "cpu", DAG: "d", Steps: []byte(`[]`), Seconds: 2, Noiseless: 2,
	}); err != nil {
		t.Fatal(err)
	}
	reg, err := regserver.NewClient(url).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 2 {
		t.Fatalf("want 2 keys after post-snapshot add, got %d", reg.Len())
	}
}

func TestServeFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"serve", "-not-a-flag"}, &out, &out, nil); err == nil {
		t.Error("bad flag accepted")
	}
	store := filepath.Join(t.TempDir(), "registry.json")
	if err := run(context.Background(), []string{"serve", "-addr", "256.0.0.1:bad", "-store", store}, &out, &out, nil); err == nil {
		t.Error("bad address accepted")
	}
	// A failed bind must not touch the store.
	if _, err := os.Stat(store); !os.IsNotExist(err) {
		t.Errorf("bad -addr should not create the store file: %v", err)
	}
}

// TestCompactVerb: the compact verb bounds a store in place with
// temp+rename, keeping the per-group best.
func TestCompactVerb(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "registry.json")
	l := &measure.Log{}
	for i := 0; i < 30; i++ {
		l.Records = append(l.Records, measure.Record{
			Task: "op", Target: "cpu", DAG: "d",
			Steps:   []byte(fmt.Sprintf(`[{"i":%d}]`, i)),
			Seconds: float64(30 - i), Noiseless: float64(30 - i),
		})
	}
	if err := l.SaveFile(store); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run(context.Background(), []string{"compact", "-store", store, "-top-k", "3"}, &out, &out, nil); err != nil {
		t.Fatalf("compact: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "30 -> 6 records") {
		t.Errorf("unexpected compact report: %s", out.String())
	}
	got, err := measure.LoadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 6 {
		t.Fatalf("store holds %d records after compact, want 6", len(got.Records))
	}
	if got.Records[0].Seconds != 1 {
		t.Errorf("compacted store lost the best record: %g", got.Records[0].Seconds)
	}
	if _, err := os.Stat(store + ".tmp"); !os.IsNotExist(err) {
		t.Error("compact left its temp file behind")
	}

	// Error cases: missing store, bad top-k, unknown verb.
	if err := run(context.Background(), []string{"compact", "-store", filepath.Join(dir, "absent.json")}, &out, &out, nil); err == nil {
		t.Error("compacting a missing store must fail")
	}
	if err := run(context.Background(), []string{"compact", "-store", store, "-top-k", "0"}, &out, &out, nil); err == nil {
		t.Error("top-k 0 must fail")
	}
	if err := run(context.Background(), []string{"bogus-verb"}, &out, &out, nil); err == nil {
		t.Error("unknown verb must fail")
	}
}

// startFleetVerb runs `ansor-registry fleet` in-process.
func startFleetVerb(t *testing.T, extra ...string) (string, *syncBuffer, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	out := &syncBuffer{}
	errCh := make(chan error, 1)
	args := append([]string{"fleet", "-addr", "127.0.0.1:0"}, extra...)
	go func() {
		errCh <- run(ctx, args, out, out, func(addr string) { addrCh <- addr })
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, out, func() error {
			cancel()
			select {
			case err := <-errCh:
				return err
			case <-time.After(10 * time.Second):
				return context.DeadlineExceeded
			}
		}
	case err := <-errCh:
		t.Fatalf("fleet verb exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("fleet verb never became ready")
	}
	panic("unreachable")
}

// TestFleetVerb drives the broker CLI end to end with a raw fleet
// client standing in for a worker.
func TestFleetVerb(t *testing.T) {
	url, out, shutdown := startFleetVerb(t, "-lease-ttl", "5s")
	cl := fleet.NewClient(url)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	ack, err := cl.Submit(fleet.JobSpec{
		Target: "cpu", Task: "t",
		DAG:      json.RawMessage(`{"synthetic":true}`),
		Programs: []json.RawMessage{json.RawMessage(`["a"]`), json.RawMessage(`["b"]`)},
	})
	if err != nil || ack.Total != 2 {
		t.Fatalf("submit: %+v err=%v", ack, err)
	}
	grant, err := cl.Lease(fleet.LeaseRequest{Worker: "w", Target: "cpu", Capacity: 4})
	if err != nil || grant == nil || len(grant.Indices) != 2 {
		t.Fatalf("lease: %+v err=%v", grant, err)
	}
	if _, err := cl.PostResults(fleet.ResultPost{Worker: "w", Job: grant.Job, Lease: grant.Lease,
		Results: []fleet.WorkerResult{{Index: 0, Noiseless: 1}, {Index: 1, Noiseless: 2}}}); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Job(ack.ID)
	if err != nil || !st.Done {
		t.Fatalf("poll: %+v err=%v", st, err)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if !strings.Contains(out.String(), "broker listening") || !strings.Contains(out.String(), "shutting down") {
		t.Errorf("missing broker lifecycle output:\n%s", out.String())
	}
}

// TestServeAuthToken: -auth-token guards publishes; the token rides
// the client URL's userinfo.
func TestServeAuthToken(t *testing.T) {
	url, _, shutdown := startServe(t, "-store", "", "-auth-token", "hunter2")
	defer shutdown()
	open := regserver.NewClient(url)
	if _, err := open.Add(measure.Record{
		Task: "op", Target: "cpu", DAG: "d",
		Steps: []byte(`[{"i":1}]`), Seconds: 1, Noiseless: 1,
	}); err == nil {
		t.Fatal("tokenless publish should be refused")
	}
	if err := open.Ping(); err != nil {
		t.Fatalf("reads should stay open: %v", err)
	}
	authed := regserver.NewClient(strings.Replace(url, "http://", "http://:hunter2@", 1))
	if ok, err := authed.Add(measure.Record{
		Task: "op", Target: "cpu", DAG: "d",
		Steps: []byte(`[{"i":1}]`), Seconds: 1, Noiseless: 1,
	}); err != nil || !ok {
		t.Fatalf("token-in-URL publish: ok=%v err=%v", ok, err)
	}
}

// TestServeAutoCompact: -compact-over rewrites an oversize store
// through the top-k + slow-tail compactor on the maintenance tick.
func TestServeAutoCompact(t *testing.T) {
	store := filepath.Join(t.TempDir(), "registry.json")
	url, _, shutdown := startServe(t,
		"-store", store, "-snapshot-every", "30ms", "-compact-over", "1", "-compact-top-k", "2")
	cl := regserver.NewClient(url)
	// Descending times: every publish improves the key and appends.
	for i := 0; i < 24; i++ {
		if _, err := cl.Add(measure.Record{
			Task: "op", Target: "cpu", DAG: "d",
			Steps:   []byte(fmt.Sprintf(`[{"i":%d}]`, i)),
			Seconds: float64(100 - i), Noiseless: float64(100 - i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		m, err := cl.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if m.AutoCompactions >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no auto compaction within 5s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
	l, err := measure.LoadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Records) > 4 || len(l.Records) < 2 {
		t.Fatalf("compacted store has %d records, want 2..4 (top-2 + tail sample)", len(l.Records))
	}
	// The best record survives compaction.
	best := l.Records[0].Seconds
	for _, r := range l.Records {
		if r.Seconds < best {
			best = r.Seconds
		}
	}
	if best != 77 {
		t.Errorf("best after compaction = %g, want 77", best)
	}
}

func TestFleetAndServeFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"serve", "-compact-over", "-3"}, &out, &out, nil); err == nil {
		t.Error("negative -compact-over should fail")
	}
	if err := run(context.Background(), []string{"serve", "-compact-top-k", "0"}, &out, &out, nil); err == nil {
		t.Error("zero -compact-top-k should fail")
	}
	if err := run(context.Background(), []string{"fleet", "-addr", "256.0.0.1:99999"}, &out, &out, nil); err == nil {
		t.Error("unbindable fleet address should fail")
	}
	if err := run(context.Background(), []string{"serve", "-tls-cert", "cert.pem"}, &out, &out, nil); err == nil {
		t.Error("-tls-cert without -tls-key should fail")
	}
	if err := run(context.Background(), []string{"serve", "-tls-key", "key.pem"}, &out, &out, nil); err == nil {
		t.Error("-tls-key without -tls-cert should fail")
	}
	if err := run(context.Background(), []string{"serve", "-publish-quota", "-1"}, &out, &out, nil); err == nil {
		t.Error("negative -publish-quota should fail")
	}
	if err := run(context.Background(), []string{"serve", "-max-keys", "-1"}, &out, &out, nil); err == nil {
		t.Error("negative -max-keys should fail")
	}
	if err := run(context.Background(), []string{"serve", "-best-cache", "-1"}, &out, &out, nil); err == nil {
		t.Error("negative -best-cache should fail")
	}
}

// selfSignedCert writes a throwaway PEM certificate/key pair valid for
// 127.0.0.1 and returns their paths.
func selfSignedCert(t *testing.T) (certFile, keyFile string) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "ansor-registry test"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:  []net.IP{net.IPv4(127, 0, 0, 1)},
		IsCA:         true, BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	certFile = filepath.Join(dir, "cert.pem")
	keyFile = filepath.Join(dir, "key.pem")
	if err := os.WriteFile(certFile, pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyFile, pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}), 0o600); err != nil {
		t.Fatal(err)
	}
	return certFile, keyFile
}

// TestServeTLS: -tls-cert/-tls-key serve HTTPS end to end; the client
// trusts the self-signed certificate through WithTLSConfig.
func TestServeTLS(t *testing.T) {
	certFile, keyFile := selfSignedCert(t)
	addr, out, shutdown := startServe(t, "-store", "", "-tls-cert", certFile, "-tls-key", keyFile)
	defer shutdown()
	url := strings.Replace(addr, "http://", "https://", 1)

	certPEM, err := os.ReadFile(certFile)
	if err != nil {
		t.Fatal(err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(certPEM) {
		t.Fatal("bad test certificate")
	}
	cl := regserver.NewClient(url).WithTLSConfig(&tls.Config{RootCAs: pool})
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping over TLS: %v", err)
	}
	if ok, err := cl.Add(measure.Record{
		Task: "op", Target: "cpu", DAG: "d",
		Steps: []byte(`[{"i":1}]`), Seconds: 1, Noiseless: 1,
	}); err != nil || !ok {
		t.Fatalf("publish over TLS: ok=%v err=%v", ok, err)
	}
	if best, ok, err := cl.Best("op", "cpu", "d"); err != nil || !ok || best.Seconds != 1 {
		t.Fatalf("best over TLS: %+v ok=%v err=%v", best, ok, err)
	}
	// Conditional GET works through TLS like plain HTTP.
	if _, _, err := cl.Best("op", "cpu", "d"); err != nil {
		t.Fatal(err)
	}
	m, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.BestNotModified < 1 {
		t.Errorf("second Best should revalidate with 304, metrics: %+v", m)
	}
	// A plain-HTTP client must not reach an HTTPS listener.
	if err := regserver.NewClient(addr).Ping(); err == nil {
		t.Error("plain http ping against TLS listener should fail")
	}
	if !strings.Contains(out.String(), "(https,") {
		t.Errorf("startup line should note https: %s", out.String())
	}
}

// TestServeQuotaAndMaxKeys: the hardening flags reach the server — a
// publisher exceeding -publish-quota gets 429, and -max-keys bounds
// the in-memory registry by evicting idle keys.
func TestServeQuotaAndMaxKeys(t *testing.T) {
	url, _, shutdown := startServe(t, "-store", "", "-publish-quota", "2", "-max-keys", "3")
	defer shutdown()
	cl := regserver.NewClient(url)
	for i := 0; i < 2; i++ {
		if _, err := cl.Add(measure.Record{
			Task: fmt.Sprintf("op%d", i), Target: "cpu", DAG: "d",
			Steps: []byte(`[]`), Seconds: 1, Noiseless: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Add(measure.Record{
		Task: "op2", Target: "cpu", DAG: "d", Steps: []byte(`[]`), Seconds: 1, Noiseless: 1,
	}); err == nil || !strings.Contains(err.Error(), "quota exceeded") {
		t.Fatalf("third publish in the window should hit the quota, got %v", err)
	}
	m, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.QuotaRejections != 1 {
		t.Errorf("quota_rejections = %d, want 1", m.QuotaRejections)
	}
	if m.Keys > 3 {
		t.Errorf("registry exceeded -max-keys: %d keys", m.Keys)
	}
}
