// Ablation benchmarks for the design choices DESIGN.md calls out: the
// contribution of evolutionary crossover, the learned cost model versus
// an oracle and versus none, the ε-greedy exploration slice, and the
// constant-tensor layout rewrite.
package repro

import (
	"testing"

	"repro/internal/anno"
	"repro/internal/evo"
	"repro/internal/ir"
	"repro/internal/measure"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/sketch"
	"repro/internal/te"
)

func ablationTask() policy.Task {
	b := te.NewBuilder("conv")
	x := b.Input("X", 16, 256, 14, 14)
	y := b.Conv2D(x, te.ConvOpts{OutChannels: 512, Kernel: 3, Stride: 2, Pad: 1})
	b.ReLU(y)
	return policy.Task{Name: "conv", DAG: b.MustFinish(), Target: sketch.CPUTarget()}
}

// BenchmarkAblationCrossover compares evolutionary search with and
// without the node-based crossover operator (§5.1), using the exact
// simulator as an oracle scorer so only the operators differ.
func BenchmarkAblationCrossover(b *testing.B) {
	d := ablationTask().DAG
	m := sim.IntelXeon()
	sk, err := sketch.NewGenerator(sketch.CPUTarget()).Generate(d)
	if err != nil {
		b.Fatal(err)
	}
	for _, crossover := range []float64{0, 0.3} {
		name := "off"
		if crossover > 0 {
			name = "on"
		}
		b.Run("crossover="+name, func(b *testing.B) {
			best := 0.0
			for i := 0; i < b.N; i++ {
				pop := anno.NewSampler(sketch.CPUTarget(), int64(i)+1).SamplePopulation(sk, 64)
				search := evo.NewSearch(evo.Config{
					PopulationSize: 64, Generations: 6,
					CrossoverProb: crossover, EliteCount: 8, Seed: int64(i) + 1,
				})
				out := search.Run(d, pop, oracle{m}, 8)
				bt := 1e30
				for _, s := range out {
					if low, err := ir.Lower(s); err == nil {
						if t := m.Time(low); t < bt {
							bt = t
						}
					}
				}
				best = bt
			}
			b.ReportMetric(best*1e6, "best-us")
		})
	}
}

type oracle struct{ m *sim.Machine }

func (o oracle) Score(states []*ir.State) []float64 {
	out := make([]float64, len(states))
	for i, s := range states {
		low, err := ir.Lower(s)
		if err != nil {
			out[i] = -1e30
			continue
		}
		out[i] = -o.m.Time(low)
	}
	return out
}
func (o oracle) NodeScores(s *ir.State) map[string]float64 { return nil }

// BenchmarkAblationCostModel compares the full search against the
// no-fine-tuning ablation at equal trial budgets — the value added by
// the learned cost model plus evolution (Figure 7's central comparison).
func BenchmarkAblationCostModel(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "learned"
		if disable {
			name = "none"
		}
		b.Run("model="+name, func(b *testing.B) {
			best := 0.0
			for i := 0; i < b.N; i++ {
				ms := measure.New(sim.IntelXeon(), 0.02, int64(i)+1)
				opts := policy.DefaultOptions()
				opts.Seed = int64(i) + 1
				opts.DisableFineTuning = disable
				p, err := policy.New(ablationTask(), opts, ms)
				if err != nil {
					b.Fatal(err)
				}
				best = p.Tune(192, 16)
			}
			b.ReportMetric(best*1e6, "best-us")
		})
	}
}

// BenchmarkAblationEpsGreedy varies the ε-greedy exploration fraction of
// the measured batch.
func BenchmarkAblationEpsGreedy(b *testing.B) {
	for _, eps := range []float64{0, 0.15, 0.5} {
		b.Run(fmtFloat(eps), func(b *testing.B) {
			best := 0.0
			for i := 0; i < b.N; i++ {
				ms := measure.New(sim.IntelXeon(), 0.02, int64(i)+1)
				opts := policy.DefaultOptions()
				opts.Seed = int64(i) + 1
				opts.EpsGreedy = eps
				p, err := policy.New(ablationTask(), opts, ms)
				if err != nil {
					b.Fatal(err)
				}
				best = p.Tune(192, 16)
			}
			b.ReportMetric(best*1e6, "best-us")
		})
	}
}

// BenchmarkAblationLayoutRewrite measures the effect of the constant-
// tensor layout rewrite (§4.2) on one well-tiled convolution program.
func BenchmarkAblationLayoutRewrite(b *testing.B) {
	d := ablationTask().DAG
	sk, err := sketch.NewGenerator(sketch.CPUTarget()).Generate(d)
	if err != nil {
		b.Fatal(err)
	}
	sp := anno.NewSampler(sketch.CPUTarget(), 1)
	m := sim.IntelXeon()
	// For every sampled program that used the rewrite, compare against
	// the identical program without it and report the mean and max
	// speedup: the rewrite never hurts and helps programs whose weight
	// accesses straddle cache lines.
	var sum, maxr float64
	n := 0
	for _, s := range sp.SamplePopulation(sk, 200) {
		used := false
		var steps []ir.Step
		for _, st := range s.Steps {
			if _, ok := st.(*ir.LayoutRewriteStep); ok {
				used = true
				continue
			}
			steps = append(steps, st.Clone())
		}
		if !used {
			continue
		}
		without, err := ir.Replay(d, steps)
		if err != nil {
			continue
		}
		lw, err1 := ir.Lower(s)
		lo, err2 := ir.Lower(without)
		if err1 != nil || err2 != nil {
			continue
		}
		r := m.Time(lo) / m.Time(lw)
		sum += r
		if r > maxr {
			maxr = r
		}
		n++
	}
	if n == 0 {
		b.Fatal("no sampled program used the layout rewrite")
	}
	for i := 0; i < b.N; i++ {
		_ = sp // the analysis above is the bench body; keep b.N semantics
	}
	b.ReportMetric(sum/float64(n), "mean-speedup-x")
	b.ReportMetric(maxr, "max-speedup-x")
}

func fmtFloat(f float64) string {
	switch f {
	case 0:
		return "eps=0"
	case 0.15:
		return "eps=0.15"
	default:
		return "eps=0.5"
	}
}
