// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation (§7) at a reduced-but-shape-preserving scale,
// plus microbenchmarks of the core subsystems. Paper-scale runs are
// available through cmd/ansor-bench (-trials 1000).
//
// Run with:  go test -bench=. -benchmem
package repro

import (
	"testing"

	"repro/internal/anno"
	"repro/internal/exp"
	"repro/internal/feat"
	"repro/internal/ir"
	"repro/internal/measure"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/sketch"
	"repro/internal/te"
	"repro/internal/workloads"
	"repro/internal/xgb"
)

func benchConfig() exp.Config {
	cfg := exp.DefaultConfig()
	cfg.Trials = 48
	cfg.PerRound = 16
	return cfg
}

// ---- Figure/table regeneration benches ----

// BenchmarkFig3CostModelPartialPrograms regenerates Figure 3: cost-model
// pairwise accuracy and top-k recall versus program completion rate.
func BenchmarkFig3CostModelPartialPrograms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Trials = 40 // 800 programs
		r := exp.Fig3(cfg)
		last := len(r.PairwiseAcc) - 1
		b.ReportMetric(r.PairwiseAcc[0], "pairwise@0")
		b.ReportMetric(r.PairwiseAcc[last], "pairwise@1")
		b.ReportMetric(r.TopKRecall[last], "recall@1")
	}
}

// BenchmarkFig6SingleOp regenerates Figure 6 (both batch sizes): the ten
// single operators against PyTorch, Halide, FlexTensor and AutoTVM.
func BenchmarkFig6SingleOp(b *testing.B) {
	for _, batch := range []int{1, 16} {
		b.Run(bname("batch", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := exp.Fig6(benchConfig(), batch)
				b.ReportMetric(float64(r.AnsorBestCount()), "ansor-best-of-10")
			}
		})
	}
}

// BenchmarkFig7Ablation regenerates Figure 7: the four-variant ablation
// curve on ResNet-50's last convolution.
func BenchmarkFig7Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Trials = 192
		r := exp.Fig7(cfg, 1)
		b.ReportMetric(r.Curves[exp.V7Ansor].Final, "ansor-final")
		b.ReportMetric(r.Curves[exp.V7BeamSearch].Final, "beam-final")
		b.ReportMetric(r.Curves[exp.V7LimitedSpace].Final, "limited-final")
		b.ReportMetric(r.Curves[exp.V7NoFineTuning].Final, "noft-final")
	}
}

// BenchmarkFig8Subgraph regenerates Figure 8 (both batch sizes): the
// ConvLayer and TBG subgraphs on CPU and GPU.
func BenchmarkFig8Subgraph(b *testing.B) {
	for _, batch := range []int{1, 16} {
		b.Run(bname("batch", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := exp.Fig8(benchConfig(), batch)
				ansorWins := 0
				for _, row := range r.Rows {
					if row.Perf[exp.FwAnsor] >= 0.98 {
						ansorWins++
					}
				}
				b.ReportMetric(float64(ansorWins), "ansor-best-of-4")
			}
		})
	}
}

// BenchmarkFig9Network regenerates Figure 9: the five end-to-end networks
// on the Intel CPU, NVIDIA GPU and ARM CPU.
func BenchmarkFig9Network(b *testing.B) {
	panels := []struct {
		plat  string
		batch int
	}{{"intel", 1}, {"intel", 16}, {"gpu", 1}, {"gpu", 16}, {"arm", 1}}
	for _, p := range panels {
		p := p
		b.Run(p.plat+"/"+bname("batch", p.batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Trials = 10 // per task
				cfg.PerRound = 10
				r := exp.Fig9Panel(cfg, p.plat, p.batch)
				b.ReportMetric(float64(r.AnsorBestCount()), "ansor-best-of-5")
			}
		})
	}
}

// BenchmarkFig10TaskScheduler regenerates Figure 10: the task-scheduler
// ablation tuning curves on MobileNet-V2 and MobileNet-V2 + ResNet-50.
func BenchmarkFig10TaskScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Trials = 8 // per task
		cfg.PerRound = 8
		rs := exp.Fig10(cfg, 1, 2)
		b.ReportMetric(rs[0].Curves[exp.VariantAnsor].Final, "mobilenet-ansor-speedup")
		b.ReportMetric(rs[1].Curves[exp.VariantAnsor].Final, "joint-ansor-speedup")
		if mt := rs[0].Curves[exp.VariantAnsor].MatchTrials; mt > 0 {
			b.ReportMetric(float64(rs[0].AutoTVMTrials)/float64(mt), "trials-saving-x")
		}
	}
}

// ---- Microbenchmarks of the core subsystems ----

func convDAG() *te.DAG {
	b := te.NewBuilder("conv")
	x := b.Input("X", 16, 256, 14, 14)
	y := b.Conv2D(x, te.ConvOpts{OutChannels: 512, Kernel: 3, Stride: 2, Pad: 1})
	b.ReLU(y)
	return b.MustFinish()
}

func BenchmarkSketchGeneration(b *testing.B) {
	d := convDAG()
	g := sketch.NewGenerator(sketch.CPUTarget())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Generate(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomAnnotation(b *testing.B) {
	d := convDAG()
	sk, _ := sketch.NewGenerator(sketch.CPUTarget()).Generate(d)
	sp := anno.NewSampler(sketch.CPUTarget(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.SamplePopulation(sk, 1)
	}
}

// BenchmarkMeasureParallel sweeps the measurer's worker count over one
// 256-program batch — the perf trajectory of the concurrent pipeline.
// Results are bit-identical across worker counts (asserted against the
// serial run); only throughput may differ. On a multi-core runner the
// 4-worker case should exceed 2x the serial programs/s.
func BenchmarkMeasureParallel(b *testing.B) {
	d := convDAG()
	sk, err := sketch.NewGenerator(sketch.CPUTarget()).Generate(d)
	if err != nil {
		b.Fatal(err)
	}
	pop := anno.NewSampler(sketch.CPUTarget(), 1).SamplePopulation(sk, 256)
	ref := measure.New(sim.IntelXeon(), 0.02, 1).Measure(pop)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run("workers="+itoa(w), func(b *testing.B) {
			ms := measure.New(sim.IntelXeon(), 0.02, 1)
			ms.Workers = w
			b.ResetTimer()
			var res []measure.Result
			for i := 0; i < b.N; i++ {
				res = ms.Measure(pop)
			}
			b.StopTimer()
			for i := range res {
				if res[i].Seconds != ref[i].Seconds {
					b.Fatalf("workers=%d: result %d diverged from serial", w, i)
				}
			}
			b.ReportMetric(float64(len(pop))*float64(b.N)/b.Elapsed().Seconds(), "programs/s")
		})
	}
}

func BenchmarkLowerAndSimulate(b *testing.B) {
	d := convDAG()
	sk, _ := sketch.NewGenerator(sketch.CPUTarget()).Generate(d)
	s := anno.NewSampler(sketch.CPUTarget(), 1).SamplePopulation(sk, 1)[0]
	m := sim.IntelXeon()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		low, err := ir.Lower(s)
		if err != nil {
			b.Fatal(err)
		}
		_ = m.Time(low)
	}
}

func BenchmarkFeatureExtraction(b *testing.B) {
	d := convDAG()
	sk, _ := sketch.NewGenerator(sketch.CPUTarget()).Generate(d)
	s := anno.NewSampler(sketch.CPUTarget(), 1).SamplePopulation(sk, 1)[0]
	low, _ := ir.Lower(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = feat.Extract(low)
	}
}

func BenchmarkCostModelFit(b *testing.B) {
	d := convDAG()
	sk, _ := sketch.NewGenerator(sketch.CPUTarget()).Generate(d)
	pop := anno.NewSampler(sketch.CPUTarget(), 1).SamplePopulation(sk, 256)
	m := sim.IntelXeon()
	var progs [][][]float64
	var y []float64
	for _, s := range pop {
		low, err := ir.Lower(s)
		if err != nil {
			continue
		}
		progs = append(progs, feat.Extract(low))
		y = append(y, 1/m.Time(low))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model := xgb.NewCostModel(xgb.DefaultOpts())
		model.Fit(progs, y)
	}
}

func BenchmarkSearchRound(b *testing.B) {
	d := convDAG()
	ms := measure.New(sim.IntelXeon(), 0.02, 1)
	p, err := policy.New(policy.Task{Name: "conv", DAG: d, Target: sketch.CPUTarget()},
		policy.DefaultOptions(), ms)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SearchRound(16)
	}
}

func BenchmarkVendorModel(b *testing.B) {
	nets := workloads.AllNetworks(1)
	plat := exp.IntelPlatform(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range nets {
			_ = exp.VendorNetworkTime(n, plat, "PyTorch")
		}
	}
}

func bname(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
