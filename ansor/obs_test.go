package ansor

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/policy"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden event-stream file from the current run")

// memObserver returns an observer collecting into a fresh MemorySink and
// registry with the real clock.
func memObserver() (*obs.Observer, *obs.MemorySink) {
	sink := &obs.MemorySink{}
	return obs.New(sink, obs.NewRegistry()), sink
}

// TestTuningBitIdenticalWithEvents pins the tentpole determinism
// contract: a tuning run with the event stream and metrics attached is
// bit-identical to one without — locally and through a worker fleet, at
// -workers 1 and 4. Events are narration, never inputs.
func TestTuningBitIdenticalWithEvents(t *testing.T) {
	task := fleetTask(t)
	base := TuningOptions{Trials: 32, MeasuresPerRound: 16, Seed: 9}
	want := runFleetTune(t, task, base) // events off, local

	url, _ := startFleet(t, nil, task.Target, 2, 4)
	cases := []struct {
		name    string
		fleet   bool
		workers int
	}{
		{"local-w1", false, 1},
		{"local-w4", false, 4},
		{"fleet-w1", true, 1},
		{"fleet-w4", true, 4},
	}
	for _, tc := range cases {
		o, sink := memObserver()
		opts := base
		opts.Workers = tc.workers
		opts.Observer = o
		if tc.fleet {
			opts.FleetURL = url
		}
		if got := runFleetTune(t, task, opts); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: events-on run diverged from events-off baseline:\noff %+v\non  %+v", tc.name, want, got)
		}
		// The run must actually have narrated, or the comparison is void.
		evs := sink.Events()
		if len(evs) == 0 {
			t.Fatalf("%s: observer saw no events", tc.name)
		}
		for _, typ := range []string{obs.EvTaskStart, obs.EvRoundStart, obs.EvPhase, obs.EvModelTrained, obs.EvRoundEnd, obs.EvTaskEnd} {
			if len(sink.ByType(typ)) == 0 {
				t.Errorf("%s: no %s event emitted", tc.name, typ)
			}
		}
		if tc.fleet {
			for _, typ := range []string{obs.EvBatchQueued, obs.EvBatchReported} {
				if len(sink.ByType(typ)) == 0 {
					t.Errorf("%s: no %s event emitted", tc.name, typ)
				}
			}
		}
	}
}

// TestPhaseEventsCoverPprofPhases: every pprof-labeled search phase
// (policy.PhaseNames — sketch/evolve/score/measure/train) emits a
// matching phase event inside its round, so a profile's phase tags and
// the event stream's round sections name the same stages.
func TestPhaseEventsCoverPprofPhases(t *testing.T) {
	task := fleetTask(t)
	o, sink := memObserver()
	// Two rounds minimum: the evolve phase only runs once the cost model
	// is trained, i.e. from round 2 on.
	runFleetTune(t, task, TuningOptions{Trials: 32, MeasuresPerRound: 16, Seed: 7, Observer: o})

	seen := map[string][]int{} // phase -> rounds it appeared in
	for _, e := range sink.ByType(obs.EvPhase) {
		if e.Round == 0 {
			t.Errorf("phase event %q missing its round", e.Phase)
		}
		seen[e.Phase] = append(seen[e.Phase], e.Round)
	}
	for _, name := range policy.PhaseNames {
		if len(seen[name]) == 0 {
			t.Errorf("pprof phase %q emitted no phase event", name)
		}
		delete(seen, name)
	}
	for name := range seen {
		t.Errorf("phase event %q matches no pprof phase label %v", name, policy.PhaseNames)
	}
}

// TestGoldenEventStream pins the JSONL encoding of a fixed-seed short
// tuning run byte for byte: field order, the schema version on every
// line, and the event sequence itself. Timestamps come from an injected
// FakeClock, so the stream is reproducible. Regenerate deliberately
// with `go test ./ansor -run GoldenEventStream -update-golden` after an
// intentional schema or taxonomy change.
func TestGoldenEventStream(t *testing.T) {
	task := fleetTask(t)
	sink := &obs.MemorySink{}
	o := &obs.Observer{
		Events:  sink,
		Metrics: obs.NewRegistry(),
		Clock:   obs.FakeClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), time.Millisecond),
	}
	runFleetTune(t, task, TuningOptions{Trials: 8, MeasuresPerRound: 4, Seed: 3, Workers: 1, Observer: o})

	var got bytes.Buffer
	for _, e := range sink.Events() {
		line, err := e.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got.Write(line)
		got.WriteByte('\n')
		// Every emitted line must round-trip through the versioned decoder.
		back, err := obs.Decode(line)
		if err != nil {
			t.Fatalf("decode emitted line: %v", err)
		}
		if back.V != obs.Version {
			t.Fatalf("emitted event carries version %d, want %d", back.V, obs.Version)
		}
	}

	golden := filepath.Join("testdata", "events_golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("event stream diverged from %s (rerun with -update-golden after an intentional change)\ngot:\n%swant:\n%s",
			golden, got.Bytes(), want)
	}
}

// TestFleetEventTimeline is the cross-process observability guarantee:
// with the tuner and broker narrating into one observer, the JSONL
// stream reconstructs every measurement batch's complete
// queued→leased→measured→reported timeline through the trace/job IDs
// propagated over the wire, and the latency histograms of the contract
// (lease wait, measure batch, round, train) all fill.
func TestFleetEventTimeline(t *testing.T) {
	task := fleetTask(t)
	o, sink := memObserver()
	url, _ := startFleet(t, func(b *fleet.Broker) { b.Obs = o }, task.Target, 1, 4)
	opts := TuningOptions{Trials: 32, MeasuresPerRound: 16, Seed: 7, Workers: 2,
		FleetURL: url, Observer: o}
	runFleetTune(t, task, opts)

	type timeline struct {
		trace                               string
		queued, leased, measured, reported  int
		leasedCount, measuredCount, queuedN int
	}
	// Reconstruct from the JSONL wire form, not the in-memory structs:
	// the stream a file sink would have written is what an operator has.
	var stream bytes.Buffer
	for _, e := range sink.Events() {
		line, err := e.Encode()
		if err != nil {
			t.Fatal(err)
		}
		stream.Write(line)
		stream.WriteByte('\n')
	}
	var events []obs.Event
	for _, line := range bytes.Split(bytes.TrimSpace(stream.Bytes()), []byte("\n")) {
		e, err := obs.Decode(line)
		if err != nil {
			t.Fatalf("decode %s: %v", line, err)
		}
		events = append(events, e)
	}

	jobs := map[string]*timeline{}
	get := func(e obs.Event) *timeline {
		if e.Job == "" {
			t.Fatalf("%s event without a job ID", e.Type)
		}
		tl := jobs[e.Job]
		if tl == nil {
			tl = &timeline{trace: e.Trace}
			jobs[e.Job] = tl
		}
		if e.Trace == "" || e.Trace != tl.trace {
			t.Errorf("job %s: %s event trace %q != batch trace %q", e.Job, e.Type, e.Trace, tl.trace)
		}
		return tl
	}
	for _, e := range events {
		switch e.Type {
		case obs.EvBatchQueued:
			tl := get(e)
			tl.queued++
			tl.queuedN = e.Count
		case obs.EvBatchLeased:
			tl := get(e)
			tl.leased++
			tl.leasedCount += e.Count
		case obs.EvBatchMeasured:
			tl := get(e)
			tl.measured++
			tl.measuredCount += e.Count
		case obs.EvBatchReported:
			get(e).reported++
		}
	}
	if len(jobs) == 0 {
		t.Fatal("no batch events: the fleet run narrated nothing")
	}
	for id, tl := range jobs {
		if tl.queued != 1 || tl.reported != 1 {
			t.Errorf("job %s: queued %d / reported %d times, want exactly 1 each", id, tl.queued, tl.reported)
		}
		if tl.leased == 0 || tl.measured == 0 {
			t.Errorf("job %s: %d lease / %d measure events, want >= 1 each", id, tl.leased, tl.measured)
		}
		// Every queued program was leased and measured (requeues can only
		// add lease events, and this run kills no workers).
		if tl.leasedCount < tl.queuedN || tl.measuredCount != tl.queuedN {
			t.Errorf("job %s: %d programs queued, %d leased, %d measured", id, tl.queuedN, tl.leasedCount, tl.measuredCount)
		}
	}

	snap := o.Metrics.Snapshot()
	for _, h := range []string{"lease_wait_seconds", "measure_batch_seconds", "round_seconds", "train_seconds"} {
		if snap.Histograms[h].Count == 0 {
			t.Errorf("histogram %s is empty after a fleet tuning run", h)
		}
	}
}
