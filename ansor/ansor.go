// Package ansor is the public API of this Ansor reproduction: an
// auto-scheduler that generates high-performance tensor programs for deep
// learning computations (Zheng et al., OSDI 2020).
//
// The typical flow mirrors Figure 4 of the paper:
//
//	dag   := ansor.NewComputeBuilder("matmul").…   // define the computation
//	task  := ansor.NewTask("matmul", dag, ansor.TargetIntelCPU())
//	tuner := ansor.NewTuner(task, ansor.TuningOptions{Trials: 1000})
//	best, err := tuner.Tune()                      // search
//	fmt.Println(best.Print())                      // the winning program
//
// Networks of many subgraphs are tuned with the gradient-descent task
// scheduler via TuneNetwork. Execution is measured on deterministic
// analytic machine models (package internal/sim) standing in for the
// paper's hardware testbeds; see DESIGN.md.
package ansor

import (
	"fmt"
	"math"
	"os"

	"repro/internal/fleet"
	"repro/internal/ir"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/regserver"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/sketch"
	"repro/internal/te"
	"repro/internal/warm"
	"repro/internal/workloads"
)

// ComputeBuilder re-exports the tensor expression builder: declare inputs
// and weights, chain operators, call Finish.
type ComputeBuilder = te.Builder

// NewComputeBuilder returns a builder for a computation DAG.
func NewComputeBuilder(name string) *ComputeBuilder { return te.NewBuilder(name) }

// DAG is a computation definition.
type DAG = te.DAG

// ConvOpts re-exports convolution options.
type ConvOpts = te.ConvOpts

// Target selects the hardware to generate programs for. It bundles the
// machine model used for measurement with the structural search-space
// parameters of §4.
type Target struct {
	Name    string
	Machine *sim.Machine
	Space   sketch.Target
}

// TargetIntelCPU is the paper's 20-core Intel Xeon; avx512 selects the
// vector ISA.
func TargetIntelCPU(avx512 bool) Target {
	m := sim.IntelXeon()
	if avx512 {
		m = sim.IntelXeonAVX512()
	}
	return Target{Name: m.Name, Machine: m, Space: sketch.CPUTarget()}
}

// TargetARMCPU is the paper's 4-core Cortex-A53.
func TargetARMCPU() Target {
	s := sketch.CPUTarget()
	s.VectorLanes = 4
	return Target{Name: "arm-cortex-a53", Machine: sim.ARMCortexA53(), Space: s}
}

// TargetNVIDIAGPU is the paper's V100.
func TargetNVIDIAGPU() Target {
	return Target{Name: "nvidia-v100", Machine: sim.NVIDIAV100(), Space: sketch.GPUTarget()}
}

// Task is one program-generation task: a subgraph on a target.
type Task struct {
	Name   string
	DAG    *DAG
	Target Target
	// Weight is the subgraph's appearance count within a network.
	Weight int
}

// NewTask builds a task (Weight 1).
func NewTask(name string, dag *DAG, target Target) Task {
	return Task{Name: name, DAG: dag, Target: target, Weight: 1}
}

// TuningOptions controls the search.
type TuningOptions struct {
	// Trials is the measurement budget (§7 uses 1000 per subgraph).
	Trials int
	// MeasuresPerRound is the batch size per search round (default 64).
	MeasuresPerRound int
	// Seed drives all randomness; equal seeds give identical searches.
	Seed int64
	// NoiseStd is the relative measurement jitter (default 0.02).
	NoiseStd float64
	// Workers bounds the goroutines used by each parallel stage of the
	// tuning pipeline — batch measurement, candidate scoring,
	// evolutionary search, cost-model training, and independent
	// scheduler rounds. 0 (the default) uses all cores with a shared
	// process-wide bound, so nested stages never oversubscribe the
	// machine; an explicit value applies per stage and may multiply
	// when stages nest (see internal/pool). Tuning output is
	// bit-identical for any value (see DESIGN.md's determinism
	// contract); Workers only changes wall-clock time.
	Workers int
	// CustomRules are user-defined sketch derivation rules (§4.1).
	CustomRules []sketch.Rule

	// RecordTo appends every fresh successful measurement as one JSON
	// record per line to this file (created if missing), building the
	// durable tuning log that ResumeFrom, WarmStartFrom and
	// ApplyHistoryBest consume. Recording is passive: it never changes
	// search results. Call Close on the tuner (TuneNetwork closes
	// internally) to release the file and surface write errors.
	RecordTo string
	// ResumeFrom replays a tuning log written by RecordTo: the search
	// re-runs deterministically from round one, but every program whose
	// record is in the log is served from it instead of re-measured, so
	// the replayed prefix costs zero fresh trials. With the original
	// seed, options and workload, the resumed run is bit-identical to an
	// uninterrupted one at any Workers value (DESIGN.md, "Persistence
	// layer"). Typically set together with RecordTo pointing at the same
	// file so the continuation keeps appending.
	ResumeFrom string
	// WarmStartFrom seeds each task's cost model and best-k pool from
	// accumulated tuning history before the first round — the search
	// starts informed instead of blind. It accepts the same source forms
	// as ApplyHistoryBest, comma-separated for a merged warm start: a
	// tuning-log/registry file path, an http(s) registry-server URL
	// (which pulls only the task-filtered slice of fleet history via the
	// server's query endpoint), or the literal "registry" for the
	// RegistryURL server. Records measured on this target replay at full
	// weight; records from a sibling target (e.g. avx2 ↔ avx512) enter
	// only the model's training data, time-calibrated and discounted —
	// never the best-k pool, so measured bests stay honest (see
	// internal/warm). Unlike ResumeFrom this deliberately changes the
	// trajectory (a better model from round one) and costs no trials for
	// the replayed programs.
	WarmStartFrom string
	// ApplyHistoryBest skips searching entirely: the best recorded
	// schedule for (workload, target) in this log/registry file — or,
	// when set to an http(s) URL, on that registry server — is replayed
	// with zero measurement trials. Tune returns an error if the source
	// has no entry for the task.
	ApplyHistoryBest string
	// RegistryURL connects the run to a shared registry server
	// (ansor-registry): every fresh successful measurement is published
	// there in addition to RecordTo, and a resumed run first seeds the
	// server with its log's existing records (cached replays never
	// re-record, so the tee alone would miss them). Publishing is
	// passive — it never changes search results — and a run that
	// publishes to a server accumulates exactly the records a local
	// RecordTo log would, so
	// applying best from the server is bit-identical to applying best
	// from the local registry path (DESIGN.md, "Registry service").
	// Publish failures surface through Tuner.Close / TuneNetwork's
	// error, like tuning-log write failures.
	RegistryURL string
	// FleetURL runs all measurement on a distributed fleet instead of
	// in-process: batches are submitted to the measurement broker at
	// this URL (`ansor-registry fleet`), sharded across the registered
	// ansor-worker processes hosting this task's target, and reassembled
	// in submission order. Everything else — search, cost model, noise,
	// records, resume cache — stays local, and the tuning output is
	// bit-identical to an in-process run at any worker count or lease
	// assignment (DESIGN.md, "Measurement fleet"). Broker failures
	// surface per-batch as measurement errors and again through
	// Tuner.Close, like tuning-log write failures. A bearer token for a
	// broker started with -auth-token may be embedded as
	// "http://:TOKEN@host:port".
	FleetURL string
	// PooledCalibration pulls the registry server's fleet-pooled
	// cross-target time calibration (/v1/calibration) at startup and
	// applies it wherever sibling-target times need scaling: warm starts
	// whose task has no local overlap with the sibling target, and
	// foreign-clock fleet results under near-sibling dispatch. Locally
	// fit scales always win; the pool only fills the gaps. Requires
	// RegistryURL (ignored without it). Pooling refines training-data
	// weighting only — best-k pools and measured bests are never touched
	// (DESIGN.md, "Heterogeneous fleet").
	PooledCalibration bool
	// WarmStartLimit caps how many records each warm-start source
	// contributes per task (0 = unbounded). Server sources query with
	// the registry's limit parameter; file sources subsample their task
	// slice with the training-representative top-k + slow-tail sampler
	// of measure.Log.Compact — deterministic either way, so a limited
	// warm start is reproducible.
	WarmStartLimit int
	// EventsTo streams the structured tuning narration as JSONL to this
	// destination: a file path (appended, created if missing) or the
	// literal "stderr". Every lifecycle point of the run emits one typed,
	// versioned obs.Event line — task and round boundaries, search
	// phases, scheduler waves, model training, best improvements,
	// warm-start summaries, and (on fleet runs) the per-batch
	// queued→leased→measured→reported timeline joined by trace IDs.
	// Events are narration, never inputs: the sink is bounded and
	// drop-on-full, so a run with events enabled is bit-identical to one
	// without (pinned by tests). Empty disables events.
	EventsTo string
	// Observer overrides the events/metrics plumbing wholesale: when
	// set, EventsTo is ignored and the run narrates into this observer's
	// sink and registry (which the caller owns and closes). Tests use it
	// to capture events in memory and pin timestamps via the observer's
	// injected clock; embedding applications use it to aggregate many
	// runs into one metrics registry.
	Observer *obs.Observer
	// CheckpointPath persists the task scheduler's gradient state
	// (sched.Checkpoint) for network tuning: TuneNetwork writes the
	// checkpoint here after the run, and — when ResumeFrom is set and
	// the file exists — verifies on resume that the replayed run passed
	// exactly through the checkpointed state (sched.VerifyReplay), so
	// option or workload drift is an error instead of silent
	// corruption. Ignored by single-task tuners, which have no
	// scheduler state beyond the log itself.
	CheckpointPath string
}

func (o *TuningOptions) defaults() {
	if o.Trials == 0 {
		o.Trials = 1000
	}
	if o.MeasuresPerRound == 0 {
		o.MeasuresPerRound = 64
	}
	if o.NoiseStd == 0 {
		o.NoiseStd = 0.02
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Rule re-exports the sketch derivation rule interface for user rules.
type Rule = sketch.Rule

// Program is a complete scheduled tensor program.
type Program struct {
	State *ir.State
	// Seconds is its measured execution time on the target.
	Seconds float64
	// GFLOPS is its measured throughput.
	GFLOPS float64
}

// Print renders the program's loop nest in the style of Figure 5.
func (p Program) Print() string { return p.State.Print() }

// Tuner searches for the best program of one task.
type Tuner struct {
	task     Task
	opts     TuningOptions
	pol      *policy.Policy
	measurer measure.Interface
	recorder *measure.Recorder
	logFile  *os.File
	obsv     *obs.Observer
	// ownedSink is the event sink the tuner opened from EventsTo (nil
	// when events are off or the caller supplied the Observer); Close
	// drains and closes it.
	ownedSink obs.Sink
}

// buildObserver resolves the options' observability plumbing: the
// caller's Observer verbatim, a fresh observer over an EventsTo sink
// (returned for the caller to close), or nil for observability off.
func buildObserver(opts TuningOptions) (*obs.Observer, obs.Sink, error) {
	if opts.Observer != nil {
		return opts.Observer, nil, nil
	}
	if opts.EventsTo == "" {
		return nil, nil, nil
	}
	sink, err := obs.OpenSink(opts.EventsTo)
	if err != nil {
		return nil, nil, fmt.Errorf("ansor: events to %s: %w", opts.EventsTo, err)
	}
	return obs.New(sink, obs.NewRegistry()), sink, nil
}

// newMeasurer builds the run's measurement surface: the in-process
// machine-model measurer, or — when FleetURL is set — a RemoteMeasurer
// shipping batches to the measurement broker. Either is wired to the
// options' record/resume files and, when RegistryURL is set, tees every
// fresh record to the registry server. The returned recorder and log
// sink (both possibly nil) are owned by the caller, which must close
// them.
func newMeasurer(target Target, opts TuningOptions, cal *measure.Calibration, obsv *obs.Observer) (measure.Interface, *measure.Recorder, *os.File, error) {
	rec, cache, f, err := measure.OpenPersistence(opts.RecordTo, opts.ResumeFrom)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("ansor: %w", err)
	}
	if opts.RegistryURL != "" {
		// Seed the server with the records already on disk: a resumed
		// run replays them from cache without re-recording, so the tee
		// alone would leave a fresh server missing the replayed prefix.
		rec, err = regserver.AttachRecorder(rec, opts.RegistryURL, opts.ResumeFrom, opts.RecordTo)
		if err != nil {
			if f != nil {
				f.Close()
			}
			return nil, nil, nil, fmt.Errorf("ansor: registry %s: %w", opts.RegistryURL, err)
		}
	}
	if opts.FleetURL != "" {
		rm := fleet.NewRemoteMeasurer(opts.FleetURL, target.Machine.Name, opts.NoiseStd, opts.Seed)
		rm.Workers = opts.Workers
		rm.Recorder = rec
		rm.Cache = cache
		rm.Calibration = cal
		rm.Obs = obsv
		if err := rm.Ping(); err != nil {
			if rec != nil {
				rec.Close()
			}
			if f != nil {
				f.Close()
			}
			return nil, nil, nil, fmt.Errorf("ansor: fleet %s: %w", opts.FleetURL, err)
		}
		return rm, rec, f, nil
	}
	ms := measure.New(target.Machine, opts.NoiseStd, opts.Seed)
	ms.Workers = opts.Workers
	ms.Recorder = rec
	ms.Cache = cache
	return ms, rec, f, nil
}

// measurerErr surfaces a fleet measurer's latched broker error; nil for
// the in-process measurer, which has no out-of-band failure mode.
func measurerErr(ms measure.Interface) error {
	if e, ok := ms.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// pooledCalibration fetches the registry server's fleet-pooled
// cross-target calibration for the run's target when PooledCalibration
// asks for it; nil (no pooled scales) when the option is off or no
// registry server is configured. A fetch failure is an error, not a
// silent cold start — the caller explicitly asked for pooling.
func pooledCalibration(target Target, opts TuningOptions) (*measure.Calibration, error) {
	if !opts.PooledCalibration || opts.RegistryURL == "" {
		return nil, nil
	}
	cal, err := regserver.NewClient(opts.RegistryURL).Calibration(target.Machine.Name)
	if err != nil {
		return nil, fmt.Errorf("ansor: pooled calibration: %w", err)
	}
	return cal, nil
}

// openWarmSource resolves the options' WarmStartFrom spec (file path,
// server URL, literal "registry", or a comma-separated mix) into a warm
// source; nil without error when no warm start was requested.
func openWarmSource(opts TuningOptions) (warm.Source, error) {
	if opts.WarmStartFrom == "" {
		return nil, nil
	}
	src, err := warm.Open(opts.WarmStartFrom, opts.RegistryURL, opts.WarmStartLimit)
	if err != nil {
		return nil, fmt.Errorf("ansor: warm start from %s: %w", opts.WarmStartFrom, err)
	}
	return src, nil
}

// warmStartPolicy fetches, prepares and absorbs one task's warm-start
// records. Replay failures are errors: a warm-start source from a
// drifted workload definition should fail loudly, like ApplyHistoryBest
// does, instead of silently starting cold.
func warmStartPolicy(pol *policy.Policy, src warm.Source, taskName, targetName string, pooled *measure.Calibration, obsv *obs.Observer) error {
	recs, err := warm.RecordsCalibrated(src, taskName, targetName, pooled)
	if err != nil {
		return fmt.Errorf("ansor: warm start task %s: %w", taskName, err)
	}
	n, err := pol.WarmStartWeighted(recs)
	if err != nil {
		return fmt.Errorf("ansor: warm start task %s: %w", taskName, err)
	}
	native, transfer := warm.Stats(recs)
	obsv.Emit(obs.Event{Type: obs.EvWarmStart, Task: taskName, Target: targetName, Count: n,
		Detail: fmt.Sprintf("native=%d transfer=%d source=%s", native, transfer, src.Name())})
	return nil
}

// NewTuner builds a tuner; it constructs the task's search space (sketch
// generation) eagerly and fails if the DAG is invalid.
func NewTuner(task Task, opts TuningOptions) (*Tuner, error) {
	opts.defaults()
	obsv, ownedSink, err := buildObserver(opts)
	if err != nil {
		return nil, err
	}
	cal, err := pooledCalibration(task.Target, opts)
	if err != nil {
		return nil, err
	}
	ms, rec, f, err := newMeasurer(task.Target, opts, cal, obsv)
	if err != nil {
		if ownedSink != nil {
			ownedSink.Close()
		}
		return nil, err
	}
	cleanup := func() {
		if rec != nil {
			rec.Close()
		}
		if f != nil {
			f.Close()
		}
		if ownedSink != nil {
			ownedSink.Close()
		}
	}
	popts := policy.DefaultOptions()
	popts.Seed = opts.Seed
	popts.Workers = opts.Workers
	pol, err := policy.New(policy.Task{
		Name: task.Name, DAG: task.DAG, Target: task.Target.Space, Weight: task.Weight,
	}, popts, ms, opts.CustomRules...)
	if err != nil {
		cleanup()
		return nil, fmt.Errorf("ansor: %w", err)
	}
	pol.Obs = obsv
	warmSrc, err := openWarmSource(opts)
	if err != nil {
		cleanup()
		return nil, err
	}
	if warmSrc != nil {
		if err := warmStartPolicy(pol, warmSrc, task.Name, task.Target.Machine.Name, cal, obsv); err != nil {
			cleanup()
			return nil, err
		}
	}
	return &Tuner{task: task, opts: opts, pol: pol, measurer: ms, recorder: rec, logFile: f,
		obsv: obsv, ownedSink: ownedSink}, nil
}

// Close flushes and closes the tuning log (if RecordTo was set), flushes
// any batched registry publishing, and reports the first write/publish
// error the recorder hit — or, on a fleet-measured run, the first
// broker failure the remote measurer latched. Safe to call on a tuner
// that never recorded.
func (t *Tuner) Close() error {
	var err error
	if t.recorder != nil {
		err = t.recorder.Close()
	}
	if ferr := measurerErr(t.measurer); err == nil {
		err = ferr
	}
	if t.logFile != nil {
		if cerr := t.logFile.Close(); err == nil {
			err = cerr
		}
		t.logFile = nil
	}
	if t.ownedSink != nil {
		// Drain the event stream; a sink write failure surfaces here like
		// a tuning-log one (the search itself never waited on it).
		if serr := t.ownedSink.Close(); err == nil {
			err = serr
		}
		t.ownedSink = nil
	}
	return err
}

// Sketches returns the generated sketches of the task's search space
// (incomplete programs with TILE placeholders, §4.1).
func (t *Tuner) Sketches() []*ir.State { return t.pol.Sketches() }

// Tune runs the full search and returns the best program found. With
// ApplyHistoryBest set it does not search at all: the registry's best
// schedule is replayed with zero measurement trials.
func (t *Tuner) Tune() (Program, error) {
	if t.opts.ApplyHistoryBest != "" {
		return t.ApplyBest()
	}
	t.obsv.Emit(obs.Event{Type: obs.EvTaskStart, Task: t.task.Name,
		Target: t.task.Target.Machine.Name, Trials: t.opts.Trials})
	t.pol.Tune(t.opts.Trials, t.opts.MeasuresPerRound)
	t.obsv.Emit(obs.Event{Type: obs.EvTaskEnd, Task: t.task.Name,
		Target: t.task.Target.Machine.Name, Seconds: t.pol.BestTime, Trials: t.pol.Trials})
	return t.Best()
}

// ApplyBest replays the best recorded schedule for this task from the
// options' ApplyHistoryBest source (log/registry file or registry
// server URL) without spending any measurement. A server source is
// queried per key (/v1/best) instead of downloading the full snapshot —
// the client rides the server's encoded-response cache and conditional
// GETs, so a fleet of consumers applying unchanged schedules costs the
// server ~0 bytes per answer. The served record is byte-identical to
// the snapshot path's (the server stores records verbatim).
func (t *Tuner) ApplyBest() (Program, error) {
	s, sec, err := applyBestFrom(t.opts.ApplyHistoryBest, t.task.Name, t.task.Target.Machine.Name, t.task.DAG)
	if err != nil {
		return Program{}, err
	}
	low, err := ir.Lower(s)
	if err != nil {
		return Program{}, fmt.Errorf("ansor: apply history best: %w", err)
	}
	return Program{State: s, Seconds: sec, GFLOPS: low.TotalFlops() / sec / 1e9}, nil
}

// applyBestFrom resolves one task's best schedule from an
// ApplyHistoryBest source: per-key server query for URLs, local
// registry load for files.
func applyBestFrom(src, workload, target string, dag *te.DAG) (*ir.State, float64, error) {
	if regserver.IsURL(src) {
		s, sec, err := regserver.NewClient(src).ApplyBest(workload, target, dag)
		if err != nil {
			return nil, 0, fmt.Errorf("ansor: apply history best: %w", err)
		}
		return s, sec, nil
	}
	reg, err := regserver.LoadRegistry(src)
	if err != nil {
		return nil, 0, fmt.Errorf("ansor: apply history best: %w", err)
	}
	s, sec, err := reg.ApplyBest(workload, target, dag)
	if err != nil {
		return nil, 0, fmt.Errorf("ansor: %w", err)
	}
	return s, sec, nil
}

// Best returns the best program measured so far.
func (t *Tuner) Best() (Program, error) {
	if t.pol.BestState == nil {
		return Program{}, fmt.Errorf("ansor: no valid program measured for task %q", t.task.Name)
	}
	low, err := ir.Lower(t.pol.BestState)
	if err != nil {
		return Program{}, err
	}
	return Program{
		State:   t.pol.BestState,
		Seconds: t.pol.BestTime,
		GFLOPS:  low.TotalFlops() / t.pol.BestTime / 1e9,
	}, nil
}

// Trials returns the number of measurements spent so far.
func (t *Tuner) Trials() int { return t.measurer.Trials() }

// History returns the tuning curve: one (trials, best time) point per
// search round. Equal seeds give identical histories for any Workers
// value.
func (t *Tuner) History() []policy.HistoryPoint { return t.pol.History }

// ModelFingerprint hashes the trained cost-model ensemble; equal
// fingerprints mean bit-identical models. The persistence determinism
// tests use it to assert a resumed search retrained to exactly the
// model of an uninterrupted run.
func (t *Tuner) ModelFingerprint() uint64 { return t.pol.ModelFingerprint() }

// NetworkTask is one weighted subgraph of a network.
type NetworkTask struct {
	Name   string
	Weight int
	Build  func() *DAG
	// Tag groups similar tasks for the scheduler's gradient
	// approximation (N(i), Appendix A); optional.
	Tag string
}

// Network is a set of weighted subgraphs (see package workloads for the
// paper's five networks).
type Network struct {
	Name  string
	Tasks []NetworkTask
}

// BuiltinNetwork returns one of the paper's evaluation networks:
// "resnet-50", "mobilenet-v2", "3d-resnet-18", "dcgan", "bert".
func BuiltinNetwork(name string, batch int) (Network, error) {
	var w workloads.Network
	switch name {
	case "resnet-50":
		w = workloads.ResNet50(batch)
	case "mobilenet-v2":
		w = workloads.MobileNetV2(batch)
	case "3d-resnet-18":
		w = workloads.Res3D18(batch)
	case "dcgan":
		w = workloads.DCGAN(batch)
	case "bert":
		w = workloads.BERT(batch)
	default:
		return Network{}, fmt.Errorf("ansor: unknown network %q", name)
	}
	return fromWorkload(w), nil
}

func fromWorkload(w workloads.Network) Network {
	n := Network{Name: w.Name}
	for _, t := range w.Tasks {
		n.Tasks = append(n.Tasks, NetworkTask{Name: t.Name, Weight: t.Weight, Build: t.Build, Tag: t.Tag})
	}
	return n
}

// NetworkResult is the outcome of tuning a network.
type NetworkResult struct {
	// Latency is the end-to-end latency estimate Σ wᵢ·gᵢ.
	Latency float64
	// TaskLatencies maps each task to its best subgraph latency.
	TaskLatencies map[string]float64
	// Trials spent in total.
	Trials int
}

// TuneNetwork tunes all subgraphs of a network with the gradient-descent
// task scheduler (§6), budgeting roughly trialsPerTask measurements per
// unique subgraph. The persistence options of TuningOptions apply to the
// whole network: one shared log records/replays every task, and
// ApplyHistoryBest serves all task latencies from the registry with zero
// measurements.
func TuneNetwork(net Network, target Target, opts TuningOptions) (NetworkResult, error) {
	opts.defaults()
	if opts.ApplyHistoryBest != "" {
		return applyNetworkBest(net, target, opts.ApplyHistoryBest)
	}
	obsv, ownedSink, err := buildObserver(opts)
	if err != nil {
		return NetworkResult{}, err
	}
	cal, err := pooledCalibration(target, opts)
	if err != nil {
		if ownedSink != nil {
			ownedSink.Close()
		}
		return NetworkResult{}, err
	}
	ms, recorder, logFile, err := newMeasurer(target, opts, cal, obsv)
	if err != nil {
		if ownedSink != nil {
			ownedSink.Close()
		}
		return NetworkResult{}, err
	}
	defer func() {
		if recorder != nil {
			recorder.Close()
		}
		if logFile != nil {
			logFile.Close()
		}
		if ownedSink != nil {
			ownedSink.Close()
		}
	}()
	warmSrc, err := openWarmSource(opts)
	if err != nil {
		return NetworkResult{}, err
	}
	var tuners []sched.Tuner
	var dnn sched.DNN
	dnn.Name = net.Name
	pols := make([]*policy.Policy, 0, len(net.Tasks))
	for i, task := range net.Tasks {
		popts := policy.DefaultOptions()
		popts.Seed = opts.Seed + int64(i)*31
		popts.Workers = opts.Workers
		dag := task.Build()
		p, err := policy.New(policy.Task{
			Name: task.Name, DAG: dag, Target: target.Space, Weight: task.Weight,
		}, popts, ms)
		if err != nil {
			return NetworkResult{}, fmt.Errorf("ansor: task %s: %w", task.Name, err)
		}
		p.Obs = obsv
		if warmSrc != nil {
			if err := warmStartPolicy(p, warmSrc, task.Name, target.Machine.Name, cal, obsv); err != nil {
				return NetworkResult{}, err
			}
		}
		obsv.Emit(obs.Event{Type: obs.EvTaskStart, Task: task.Name,
			Target: target.Machine.Name, Trials: opts.Trials})
		pols = append(pols, p)
		tuners = append(tuners, &netTuner{
			p: p, perRound: opts.MeasuresPerRound, tag: task.Tag, flops: dag.TotalFlops(),
		})
		dnn.Tasks = append(dnn.Tasks, i)
		dnn.Weights = append(dnn.Weights, float64(task.Weight))
	}
	sopts := sched.DefaultOptions()
	sopts.Workers = opts.Workers
	s := sched.New(tuners, sched.F1{DNNs: []sched.DNN{dnn}}, sopts)
	s.Obs = obsv
	// A resumed run re-executes from round one with cached measurements;
	// the checkpoint written by the interrupted run lets us VERIFY the
	// replay passed through exactly the recorded state instead of
	// trusting determinism blindly (drifted options, workloads, or logs
	// become errors here).
	var verifyAgainst *sched.Checkpoint
	meta := checkpointMeta(net, target, opts)
	if opts.CheckpointPath != "" && opts.ResumeFrom != "" {
		prevMeta, prevSched, err := loadCheckpoint(opts.CheckpointPath)
		if err != nil {
			return NetworkResult{}, err
		}
		if prevMeta != nil {
			if err := prevMeta.verifyMeta(meta); err != nil {
				return NetworkResult{}, fmt.Errorf("ansor: resume %s: %w", opts.CheckpointPath, err)
			}
			verifyAgainst = prevSched
		}
	}
	units := opts.Trials * len(tuners) / opts.MeasuresPerRound
	if units < len(tuners) {
		units = len(tuners)
	}
	s.Run(units)
	if verifyAgainst != nil {
		if err := s.VerifyReplay(verifyAgainst); err != nil {
			return NetworkResult{}, fmt.Errorf("ansor: resume %s: replay diverged from checkpoint (options, workload, or log drift): %w",
				opts.CheckpointPath, err)
		}
	}
	if opts.CheckpointPath != "" {
		if err := writeCheckpoint(opts.CheckpointPath, meta, s); err != nil {
			return NetworkResult{}, err
		}
	}
	res := NetworkResult{TaskLatencies: map[string]float64{}, Trials: ms.Trials()}
	g := make([]float64, len(tuners))
	for i, t := range tuners {
		g[i] = t.BestLatency()
		res.TaskLatencies[net.Tasks[i].Name] = g[i]
		obsv.Emit(obs.Event{Type: obs.EvTaskEnd, Task: net.Tasks[i].Name,
			Target: target.Machine.Name, Seconds: g[i], Trials: pols[i].Trials})
	}
	res.Latency = dnn.Latency(g)
	if math.IsInf(res.Latency, 1) {
		return res, fmt.Errorf("ansor: some tasks were never measured; increase Trials")
	}
	if recorder != nil {
		// Close (not just Err) flushes any batched registry publishing;
		// it is idempotent, so the deferred close for early-error paths
		// stays harmless.
		if err := recorder.Close(); err != nil {
			return res, fmt.Errorf("ansor: tuning log: %w", err)
		}
	}
	if err := measurerErr(ms); err != nil {
		// A fleet-measured run with a broker failure mid-run is a
		// divergent run: some batches came back errored and the search
		// went on without them. Fail it like a torn tuning log.
		return res, fmt.Errorf("ansor: fleet: %w", err)
	}
	if logFile != nil {
		f := logFile
		logFile = nil
		if err := f.Close(); err != nil {
			return res, fmt.Errorf("ansor: tuning log: %w", err)
		}
	}
	if ownedSink != nil {
		s := ownedSink
		ownedSink = nil
		if err := s.Close(); err != nil {
			return res, fmt.Errorf("ansor: events: %w", err)
		}
	}
	return res, nil
}

// applyNetworkBest serves a whole network's latencies from the registry
// with zero measurement trials. Every unique subgraph must have a
// recorded schedule; missing tasks are reported by name so the caller
// knows what still needs tuning. A server source is queried per task
// (/v1/best) instead of snapshotting the whole fleet database: each
// lookup rides the server's encoded-response cache, and the client's
// validator cache turns repeat applications into conditional GETs.
func applyNetworkBest(net Network, target Target, path string) (NetworkResult, error) {
	var lookup func(name string, dag *DAG) (measure.Record, bool, error)
	if regserver.IsURL(path) {
		cl := regserver.NewClient(path)
		lookup = func(name string, dag *DAG) (measure.Record, bool, error) {
			return cl.BestFor(name, target.Machine.Name, dag)
		}
	} else {
		reg, err := regserver.LoadRegistry(path)
		if err != nil {
			return NetworkResult{}, fmt.Errorf("ansor: apply history best: %w", err)
		}
		lookup = func(name string, dag *DAG) (measure.Record, bool, error) {
			rec, ok := reg.BestFor(name, target.Machine.Name, dag)
			return rec, ok, nil
		}
	}
	res := NetworkResult{TaskLatencies: map[string]float64{}}
	var missing []string
	for _, task := range net.Tasks {
		dag := task.Build()
		// The lookup keys on the task's exact computation fingerprint, so
		// a record tuned for another shape (e.g. a different batch size
		// under the same task name) is never served.
		rec, ok, err := lookup(task.Name, dag)
		if err != nil {
			return NetworkResult{}, fmt.Errorf("ansor: apply history best: task %s: %w", task.Name, err)
		}
		if !ok {
			missing = append(missing, task.Name)
			continue
		}
		// Replay validates that the recorded steps still build on the
		// task's DAG; a registry from a stale workload definition fails
		// loudly instead of serving unbuildable schedules.
		if _, err := rec.Replay(dag); err != nil {
			return NetworkResult{}, fmt.Errorf("ansor: apply history best: task %s: %w", task.Name, err)
		}
		res.TaskLatencies[task.Name] = rec.Seconds
		res.Latency += float64(task.Weight) * rec.Seconds
	}
	if len(missing) > 0 {
		return NetworkResult{}, fmt.Errorf("ansor: apply history best: no recorded schedule for %d task(s) on %s: %v",
			len(missing), target.Machine.Name, missing)
	}
	return res, nil
}

type netTuner struct {
	p        *policy.Policy
	perRound int
	tag      string
	flops    float64
}

func (t *netTuner) Name() string { return t.p.Task.Name }
func (t *netTuner) BestLatency() float64 {
	if t.p.BestState == nil {
		return math.Inf(1)
	}
	return t.p.BestTime
}
func (t *netTuner) AllocateUnit()         { t.p.SearchRound(t.perRound) }
func (t *netTuner) TaskFlops() float64    { return t.flops }
func (t *netTuner) SimilarityTag() string { return t.tag }
