package ansor

import (
	"path/filepath"
	"testing"

	"repro/internal/measure"
)

func persistDAG(t *testing.T) *DAG {
	t.Helper()
	b := NewComputeBuilder("matmul_relu")
	a := b.Input("A", 128, 128)
	c := b.Matmul(a, 128, true)
	b.ReLU(c)
	dag, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return dag
}

type tuneOutcome struct {
	sig     string
	seconds float64
	history []struct {
		trials int
		best   float64
	}
	modelFP  uint64
	measured int
}

// runPersistTune is one tuning run with the persistence options applied.
func runPersistTune(t *testing.T, trials, workers int, record, resume string) tuneOutcome {
	t.Helper()
	tuner, err := NewTuner(NewTask("mm", persistDAG(t), TargetIntelCPU(true)), TuningOptions{
		Trials: trials, MeasuresPerRound: 16, Seed: 7, Workers: workers,
		RecordTo: record, ResumeFrom: resume,
	})
	if err != nil {
		t.Fatal(err)
	}
	best, err := tuner.Tune()
	if err != nil {
		t.Fatal(err)
	}
	if err := tuner.Close(); err != nil {
		t.Fatal(err)
	}
	out := tuneOutcome{
		sig:      best.State.Signature(),
		seconds:  best.Seconds,
		modelFP:  tuner.ModelFingerprint(),
		measured: tuner.Trials(),
	}
	for _, h := range tuner.History() {
		out.history = append(out.history, struct {
			trials int
			best   float64
		}{h.Trials, h.BestTime})
	}
	return out
}

// TestResumeBitIdentical is the determinism regression test of the
// persistence layer: tuning N rounds fresh vs. tuning k rounds,
// checkpointing (the tuning log IS the checkpoint), resuming, and tuning
// N−k more must produce bit-identical best signature, best time, history
// curve — and even the retrained cost-model ensemble — at any worker
// count. The resumed run must not re-measure logged programs.
func TestResumeBitIdentical(t *testing.T) {
	const full, partial = 48, 32
	dir := t.TempDir()
	fileA := filepath.Join(dir, "full.json")
	fileB := filepath.Join(dir, "partial.json")

	uninterrupted := runPersistTune(t, full, 0, fileA, "")
	part := runPersistTune(t, partial, 0, fileB, "")
	resumed := runPersistTune(t, full, 0, fileB, fileB)

	if resumed.sig != uninterrupted.sig {
		t.Errorf("best-program signature diverged:\nresumed: %s\nfresh:   %s", resumed.sig, uninterrupted.sig)
	}
	if resumed.seconds != uninterrupted.seconds {
		t.Errorf("best time diverged: %g vs %g", resumed.seconds, uninterrupted.seconds)
	}
	if resumed.modelFP != uninterrupted.modelFP {
		t.Errorf("resumed cost model diverged: %x vs %x", resumed.modelFP, uninterrupted.modelFP)
	}
	if len(resumed.history) != len(uninterrupted.history) {
		t.Fatalf("history length diverged: %d vs %d", len(resumed.history), len(uninterrupted.history))
	}
	for i := range resumed.history {
		if resumed.history[i] != uninterrupted.history[i] {
			t.Errorf("history[%d] diverged: %+v vs %+v", i, resumed.history[i], uninterrupted.history[i])
		}
	}
	// The resumed run replays rounds 1..k from the log: it spends fresh
	// measurements only on the continuation.
	if want := uninterrupted.measured - part.measured; resumed.measured != want {
		t.Errorf("resumed run spent %d fresh trials, want %d (continuation only)", resumed.measured, want)
	}

	// After the resumed run, fileB holds the full log: replaying the
	// whole run — at a different worker count — reproduces everything
	// without a single fresh successful measurement.
	for _, workers := range []int{1, 8} {
		replay := runPersistTune(t, full, workers, "", fileB)
		if replay.sig != uninterrupted.sig || replay.seconds != uninterrupted.seconds ||
			replay.modelFP != uninterrupted.modelFP {
			t.Errorf("workers=%d: full replay diverged from the uninterrupted run", workers)
		}
		if replay.measured != 0 {
			t.Errorf("workers=%d: full replay spent %d fresh trials, want 0", workers, replay.measured)
		}
	}

	// The two logs agree on their common prefix: fileB (partial+resumed)
	// and fileA (uninterrupted) record the same programs.
	logA, err := measure.LoadFile(fileA)
	if err != nil {
		t.Fatal(err)
	}
	logB, err := measure.LoadFile(fileB)
	if err != nil {
		t.Fatal(err)
	}
	if len(logA.Records) != len(logB.Records) {
		t.Fatalf("log sizes diverged: %d vs %d", len(logA.Records), len(logB.Records))
	}
	for i := range logA.Records {
		if logA.Records[i].Sig != logB.Records[i].Sig || logA.Records[i].Seconds != logB.Records[i].Seconds {
			t.Errorf("record %d diverged between interrupted and uninterrupted logs", i)
		}
	}
}

// TestApplyHistoryBestZeroTrials: the registry's best schedule replays
// without any measurement.
func TestApplyHistoryBestZeroTrials(t *testing.T) {
	dir := t.TempDir()
	logFile := filepath.Join(dir, "log.json")
	tuned := runPersistTune(t, 32, 0, logFile, "")

	tuner, err := NewTuner(NewTask("mm", persistDAG(t), TargetIntelCPU(true)), TuningOptions{
		Trials: 1000, Seed: 99, ApplyHistoryBest: logFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	best, err := tuner.Tune()
	if err != nil {
		t.Fatal(err)
	}
	if tuner.Trials() != 0 {
		t.Errorf("apply-history-best spent %d trials, want 0", tuner.Trials())
	}
	if best.State.Signature() != tuned.sig || best.Seconds != tuned.seconds {
		t.Errorf("served schedule (%g) is not the recorded best (%g)", best.Seconds, tuned.seconds)
	}
	if best.GFLOPS <= 0 {
		t.Error("served program should report throughput")
	}

	// Unknown task fails loudly instead of silently searching.
	miss, err := NewTuner(NewTask("unknown-task", persistDAG(t), TargetIntelCPU(true)), TuningOptions{
		ApplyHistoryBest: logFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := miss.Tune(); err == nil {
		t.Error("apply-history-best for an unrecorded task must error")
	}
}

// TestWarmStartImprovesStart: a warm-started tuner begins from the
// recorded best instead of from scratch and keeps improving from there.
func TestWarmStartImprovesStart(t *testing.T) {
	dir := t.TempDir()
	logFile := filepath.Join(dir, "log.json")
	tuned := runPersistTune(t, 32, 0, logFile, "")

	tuner, err := NewTuner(NewTask("mm", persistDAG(t), TargetIntelCPU(true)), TuningOptions{
		Trials: 16, MeasuresPerRound: 16, Seed: 11, WarmStartFrom: logFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	best, err := tuner.Tune()
	if err != nil {
		t.Fatal(err)
	}
	if best.Seconds > tuned.seconds {
		t.Errorf("warm-started search (%g) regressed below the recorded best (%g)", best.Seconds, tuned.seconds)
	}
}

// TestTuneNetworkResume extends record/resume to the task scheduler: a
// killed network tuning job resumed from its log matches the
// uninterrupted run and re-measures nothing it logged.
func TestTuneNetworkResume(t *testing.T) {
	run := func(trials int, record, resume string) NetworkResult {
		net, err := BuiltinNetwork("dcgan", 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := TuneNetwork(net, TargetIntelCPU(true), TuningOptions{
			Trials: trials, MeasuresPerRound: 8, Seed: 3,
			RecordTo: record, ResumeFrom: resume,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dir := t.TempDir()
	fileA := filepath.Join(dir, "full.json")
	fileB := filepath.Join(dir, "partial.json")

	uninterrupted := run(16, fileA, "")
	part := run(8, fileB, "")
	resumed := run(16, fileB, fileB)

	if resumed.Latency != uninterrupted.Latency {
		t.Errorf("resumed network latency %g, uninterrupted %g", resumed.Latency, uninterrupted.Latency)
	}
	for name, lat := range uninterrupted.TaskLatencies {
		if got := resumed.TaskLatencies[name]; got != lat {
			t.Errorf("task %s: resumed %g, uninterrupted %g", name, got, lat)
		}
	}
	if want := uninterrupted.Trials - part.Trials; resumed.Trials != want {
		t.Errorf("resumed network spent %d fresh trials, want %d", resumed.Trials, want)
	}

	// And the registry can serve the whole network with zero trials.
	net, err := BuiltinNetwork("dcgan", 1)
	if err != nil {
		t.Fatal(err)
	}
	served, err := TuneNetwork(net, TargetIntelCPU(true), TuningOptions{ApplyHistoryBest: fileA})
	if err != nil {
		t.Fatal(err)
	}
	if served.Trials != 0 {
		t.Errorf("apply-history-best network spent %d trials, want 0", served.Trials)
	}
	if served.Latency <= 0 || served.Latency > uninterrupted.Latency {
		t.Errorf("served latency %g, want (0, %g]", served.Latency, uninterrupted.Latency)
	}
}

// TestApplyHistoryBestRejectsOtherShape: records are keyed by the exact
// computation, so a log tuned for one shape never serves another shape
// under the same task name (batch-1 split factors would replay onto a
// batch-16 DAG without error and report the wrong latency).
func TestApplyHistoryBestRejectsOtherShape(t *testing.T) {
	dir := t.TempDir()
	logFile := filepath.Join(dir, "log.json")
	runPersistTune(t, 16, 0, logFile, "")

	b := NewComputeBuilder("matmul_relu")
	a := b.Input("A", 256, 256)
	c := b.Matmul(a, 256, true)
	b.ReLU(c)
	other, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Same task name "mm", different shape.
	tuner, err := NewTuner(NewTask("mm", other, TargetIntelCPU(true)), TuningOptions{
		ApplyHistoryBest: logFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tuner.Tune(); err == nil {
		t.Fatal("apply-history-best must not serve a record tuned for a different shape")
	}
}
