package ansor

import (
	"testing"
)

// TestTuningDeterministicAcrossWorkers enforces the repository's
// concurrency contract (DESIGN.md): with one seed, the tuning outcome —
// best program signature, best time, trial accounting, and the full
// History curve — is bit-identical for any Workers value. Parallelism may
// only change wall-clock time, never results.
func TestTuningDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct {
		name   string
		target Target
	}{
		{"intel-cpu", TargetIntelCPU(true)},
		{"nvidia-gpu", TargetNVIDIAGPU()},
	}
	type outcome struct {
		sig     string
		seconds float64
		trials  int
		history []struct {
			trials int
			best   float64
		}
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(workers int) outcome {
				b := NewComputeBuilder("matmul_relu")
				a := b.Input("A", 512, 512)
				c := b.Matmul(a, 512, true)
				b.ReLU(c)
				dag, err := b.Finish()
				if err != nil {
					t.Fatal(err)
				}
				tuner, err := NewTuner(NewTask("mm", dag, tc.target), TuningOptions{
					Trials: 48, MeasuresPerRound: 16, Seed: 7, Workers: workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				best, err := tuner.Tune()
				if err != nil {
					t.Fatal(err)
				}
				out := outcome{
					sig:     best.State.Signature(),
					seconds: best.Seconds,
					trials:  tuner.Trials(),
				}
				for _, h := range tuner.History() {
					out.history = append(out.history, struct {
						trials int
						best   float64
					}{h.Trials, h.BestTime})
				}
				return out
			}
			serial := run(1)
			parallel := run(8)
			if serial.sig != parallel.sig {
				t.Errorf("best-program signature diverged:\nworkers=1: %s\nworkers=8: %s", serial.sig, parallel.sig)
			}
			if serial.seconds != parallel.seconds {
				t.Errorf("best time diverged: %g vs %g", serial.seconds, parallel.seconds)
			}
			if serial.trials != parallel.trials {
				t.Errorf("trial count diverged: %d vs %d", serial.trials, parallel.trials)
			}
			if len(serial.history) != len(parallel.history) {
				t.Fatalf("history length diverged: %d vs %d", len(serial.history), len(parallel.history))
			}
			for i := range serial.history {
				if serial.history[i] != parallel.history[i] {
					t.Errorf("history[%d] diverged: %+v vs %+v", i, serial.history[i], parallel.history[i])
				}
			}
		})
	}
}

// TestTuneNetworkDeterministicAcrossWorkers extends the contract to the
// task scheduler: concurrent warm-up rounds over a shared measurer must
// not perturb latencies or total trial accounting.
func TestTuneNetworkDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) NetworkResult {
		net, err := BuiltinNetwork("dcgan", 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := TuneNetwork(net, TargetIntelCPU(true), TuningOptions{
			Trials: 16, MeasuresPerRound: 8, Seed: 3, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	if serial.Latency != parallel.Latency {
		t.Errorf("network latency diverged: %g vs %g", serial.Latency, parallel.Latency)
	}
	if serial.Trials != parallel.Trials {
		t.Errorf("trials diverged: %d vs %d", serial.Trials, parallel.Trials)
	}
	for name, lat := range serial.TaskLatencies {
		if plat := parallel.TaskLatencies[name]; plat != lat {
			t.Errorf("task %s latency diverged: %g vs %g", name, lat, plat)
		}
	}
}
