package ansor

import (
	"context"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
)

// fleetOutcome is everything the determinism contract promises to be
// measurement-transport-invariant.
type fleetOutcome struct {
	sig     string
	seconds float64
	gflops  float64
	trials  int
	history []struct {
		trials int
		best   float64
	}
	model uint64
}

func fleetTask(t *testing.T) Task {
	t.Helper()
	b := NewComputeBuilder("matmul_relu")
	a := b.Input("A", 256, 256)
	c := b.Matmul(a, 256, true)
	b.ReLU(c)
	dag, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return NewTask("mm", dag, TargetIntelCPU(true))
}

func runFleetTune(t *testing.T, task Task, opts TuningOptions) fleetOutcome {
	t.Helper()
	tuner, err := NewTuner(task, opts)
	if err != nil {
		t.Fatal(err)
	}
	best, err := tuner.Tune()
	if err != nil {
		t.Fatal(err)
	}
	out := fleetOutcome{
		sig:     best.State.Signature(),
		seconds: best.Seconds,
		gflops:  best.GFLOPS,
		trials:  tuner.Trials(),
		model:   tuner.ModelFingerprint(),
	}
	for _, h := range tuner.History() {
		out.history = append(out.history, struct {
			trials int
			best   float64
		}{h.Trials, h.BestTime})
	}
	if err := tuner.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return out
}

func startFleet(t *testing.T, mutate func(*fleet.Broker), target Target, capacities ...int) (string, *fleet.Client) {
	t.Helper()
	b := fleet.NewBroker()
	if mutate != nil {
		mutate(b)
	}
	hs := httptest.NewServer(b.Handler())
	t.Cleanup(hs.Close)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i, capy := range capacities {
		w := fleet.NewWorker(hs.URL, target.Machine.Name+"-w"+string(rune('a'+i)), target.Machine, capy)
		w.PollInterval = time.Millisecond
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
	return hs.URL, fleet.NewClient(hs.URL)
}

// TestFleetTuningBitIdenticalToLocal is the subsystem's headline
// guarantee (DESIGN.md, "Measurement fleet"): a tuning run measured on
// a remote worker fleet is bit-identical to the same run measured
// in-process — same history curve, same best time, same trained model —
// for a 1-worker fleet and a 3-worker mixed-capacity fleet, at
// different -workers values.
func TestFleetTuningBitIdenticalToLocal(t *testing.T) {
	task := fleetTask(t)
	base := TuningOptions{Trials: 48, MeasuresPerRound: 16, Seed: 7}
	local := runFleetTune(t, task, base)

	url1, _ := startFleet(t, nil, task.Target, 4)
	opts1 := base
	opts1.FleetURL = url1
	if got := runFleetTune(t, task, opts1); !reflect.DeepEqual(got, local) {
		t.Errorf("1-worker fleet diverged from local:\nlocal  %+v\nfleet  %+v", local, got)
	}

	url3, _ := startFleet(t, nil, task.Target, 1, 2, 4)
	opts3 := base
	opts3.FleetURL = url3
	opts3.Workers = 3 // client parallelism must be as invisible as fleet sharding
	if got := runFleetTune(t, task, opts3); !reflect.DeepEqual(got, local) {
		t.Errorf("3-worker mixed-capacity fleet diverged from local:\nlocal  %+v\nfleet  %+v", local, got)
	}
}

// TestFleetSiblingDispatchBitIdenticalToLocal: the fleet hosts NO
// worker for the task's avx512 target — only avx2 near-siblings — yet
// near-sibling dispatch drains every batch and the outcome is
// bit-identical to local. Sibling grants are timed on the job target's
// own machine model, so dispatch distance is invisible in results; the
// broker metrics prove every lease crossed targets.
func TestFleetSiblingDispatchBitIdenticalToLocal(t *testing.T) {
	task := fleetTask(t)
	base := TuningOptions{Trials: 32, MeasuresPerRound: 16, Seed: 5}
	local := runFleetTune(t, task, base)

	url, cl := startFleet(t, nil, TargetIntelCPU(false), 2, 3)
	opts := base
	opts.FleetURL = url
	if got := runFleetTune(t, task, opts); !reflect.DeepEqual(got, local) {
		t.Errorf("sibling-only fleet diverged from local:\nlocal  %+v\nfleet  %+v", local, got)
	}
	m, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.SiblingLeases == 0 || m.SiblingPrograms == 0 {
		t.Errorf("sibling counters = %d/%d, want > 0: every lease crossed targets", m.SiblingLeases, m.SiblingPrograms)
	}
}

// TestFleetTuningSurvivesWorkerDeath kills a worker mid-batch: its
// leases expire, requeue onto the surviving worker, and the tuning
// outcome still matches the local run bit for bit.
func TestFleetTuningSurvivesWorkerDeath(t *testing.T) {
	task := fleetTask(t)
	base := TuningOptions{Trials: 32, MeasuresPerRound: 16, Seed: 11}
	local := runFleetTune(t, task, base)

	url, cl := startFleet(t, func(b *fleet.Broker) { b.LeaseTTL = 60 * time.Millisecond }, task.Target, 4)

	// The doomed "worker": a raw client that takes exactly one lease of
	// the first batch and never answers. Grab it before the real tuning
	// work drains — the tuner is started first so a job exists to lease.
	done := make(chan fleetOutcome, 1)
	opts := base
	opts.FleetURL = url
	go func() { done <- runFleetTune(t, task, opts) }()
	grabDeadline := time.Now().Add(5 * time.Second)
	for {
		g, err := cl.Lease(fleet.LeaseRequest{Worker: "doomed", Target: task.Target.Machine.Name, Capacity: 4})
		if err != nil {
			t.Fatalf("doomed lease: %v", err)
		}
		if g != nil {
			break
		}
		if time.Now().After(grabDeadline) {
			t.Fatal("no job became leasable")
		}
		time.Sleep(time.Millisecond)
	}

	got := <-done
	if !reflect.DeepEqual(got, local) {
		t.Errorf("post-requeue fleet run diverged from local:\nlocal  %+v\nfleet  %+v", local, got)
	}
	m, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.LeaseExpiries < 1 {
		t.Errorf("lease expiries = %d, want >= 1 (the doomed worker's slice)", m.LeaseExpiries)
	}
}

// TestTunerCloseSurfacesFleetError mirrors the PR 3 tee-sink latching
// tests: a broker that dies mid-run fails measurement batches (the
// search skips them) and the latched error surfaces through
// Tuner.Close, like a torn tuning log.
func TestTunerCloseSurfacesFleetError(t *testing.T) {
	task := fleetTask(t)
	b := fleet.NewBroker()
	hs := httptest.NewServer(b.Handler())
	tuner, err := NewTuner(task, TuningOptions{
		Trials: 24, MeasuresPerRound: 8, Seed: 3, FleetURL: hs.URL,
	})
	if err != nil {
		hs.Close()
		t.Fatal(err)
	}
	hs.Close() // the fleet vanishes before the first batch
	if _, err := tuner.Tune(); err == nil {
		t.Error("Tune with a dead broker should find no valid program")
	}
	cerr := tuner.Close()
	if cerr == nil || !strings.Contains(cerr.Error(), "fleet") {
		t.Fatalf("Close = %v, want the latched fleet error", cerr)
	}
}
