package ansor

import (
	"strings"
	"testing"
)

func matmulDAG(t *testing.T) *DAG {
	t.Helper()
	b := NewComputeBuilder("matmul_relu")
	a := b.Input("A", 512, 512)
	c := b.Matmul(a, 512, true)
	b.ReLU(c)
	d, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTunerEndToEnd(t *testing.T) {
	task := NewTask("matmul", matmulDAG(t), TargetIntelCPU(false))
	tuner, err := NewTuner(task, TuningOptions{Trials: 64, MeasuresPerRound: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(tuner.Sketches()) == 0 {
		t.Fatal("no sketches")
	}
	best, err := tuner.Tune()
	if err != nil {
		t.Fatal(err)
	}
	if best.Seconds <= 0 || best.GFLOPS <= 0 {
		t.Fatalf("bad result: %+v", best)
	}
	if tuner.Trials() != 64 {
		t.Errorf("trials = %d, want 64", tuner.Trials())
	}
	out := best.Print()
	if !strings.Contains(out, "parallel") && !strings.Contains(out, "vectorize") {
		t.Errorf("best program lacks annotations:\n%s", out)
	}
}

func TestTunerRejectsEmptyDAG(t *testing.T) {
	b := NewComputeBuilder("empty")
	if _, err := b.Finish(); err == nil {
		t.Fatal("empty dag accepted")
	}
}

func TestBuiltinNetworks(t *testing.T) {
	for _, name := range []string{"resnet-50", "mobilenet-v2", "3d-resnet-18", "dcgan", "bert"} {
		n, err := BuiltinNetwork(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(n.Tasks) == 0 {
			t.Errorf("%s: no tasks", name)
		}
	}
	if _, err := BuiltinNetwork("nope", 1); err == nil {
		t.Error("unknown network accepted")
	}
}

func TestTuneNetworkSmall(t *testing.T) {
	net, err := BuiltinNetwork("dcgan", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TuneNetwork(net, TargetIntelCPU(true), TuningOptions{
		Trials: 16, MeasuresPerRound: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= 0 {
		t.Fatalf("latency %g", res.Latency)
	}
	if len(res.TaskLatencies) != len(net.Tasks) {
		t.Errorf("task latencies %d, want %d", len(res.TaskLatencies), len(net.Tasks))
	}
}

func TestTargets(t *testing.T) {
	for _, tgt := range []Target{TargetIntelCPU(false), TargetIntelCPU(true), TargetARMCPU(), TargetNVIDIAGPU()} {
		if tgt.Machine == nil || tgt.Name == "" {
			t.Errorf("bad target %+v", tgt)
		}
	}
	if TargetIntelCPU(true).Machine.VectorLanes != 16 {
		t.Error("avx512 target should have 16 lanes")
	}
	if !TargetNVIDIAGPU().Space.GPU {
		t.Error("gpu target should use gpu sketch rules")
	}
}
