package ansor

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/sched"
)

// netCheckpoint is the durable scheduler state of one network tuning
// run, written beside the tuning log (TuningOptions.CheckpointPath).
// The meta fields pin what replay-resume silently assumes: a resumed
// run whose options or workload drifted from the checkpointed run
// fails fast on the meta mismatch, and one that drifted subtly (same
// options, different code or log) fails the post-run VerifyReplay.
type netCheckpoint struct {
	Network  string   `json:"network"`
	Target   string   `json:"target"`
	Seed     int64    `json:"seed"`
	PerRound int      `json:"per_round"`
	Workers  int      `json:"workers,omitempty"` // informational: results are worker-independent
	Tasks    []string `json:"tasks"`
	// Sched is the scheduler checkpoint, inf-safe encoded by
	// sched.Checkpoint.Marshal.
	Sched json.RawMessage `json:"sched"`
}

// checkpointMeta builds the meta envelope for the current run.
func checkpointMeta(net Network, target Target, opts TuningOptions) netCheckpoint {
	c := netCheckpoint{
		Network:  net.Name,
		Target:   target.Name,
		Seed:     opts.Seed,
		PerRound: opts.MeasuresPerRound,
		Workers:  opts.Workers,
	}
	for _, t := range net.Tasks {
		c.Tasks = append(c.Tasks, t.Name)
	}
	return c
}

// verifyMeta errors on any drift between the checkpointed run's
// identity and the current one. Workers is exempt: the determinism
// contract makes results worker-independent.
func (c netCheckpoint) verifyMeta(want netCheckpoint) error {
	if c.Network != want.Network {
		return fmt.Errorf("checkpoint is for network %q, tuning %q", c.Network, want.Network)
	}
	if c.Target != want.Target {
		return fmt.Errorf("checkpoint is for target %q, tuning on %q", c.Target, want.Target)
	}
	if c.Seed != want.Seed {
		return fmt.Errorf("checkpoint used seed %d, this run uses %d", c.Seed, want.Seed)
	}
	if c.PerRound != want.PerRound {
		return fmt.Errorf("checkpoint used %d measures per round, this run uses %d", c.PerRound, want.PerRound)
	}
	if len(c.Tasks) != len(want.Tasks) {
		return fmt.Errorf("checkpoint has %d tasks, network has %d", len(c.Tasks), len(want.Tasks))
	}
	for i := range c.Tasks {
		if c.Tasks[i] != want.Tasks[i] {
			return fmt.Errorf("checkpoint task %d is %q, network has %q", i, c.Tasks[i], want.Tasks[i])
		}
	}
	return nil
}

// loadCheckpoint reads a checkpoint file; a missing file returns
// (nil, nil) so first runs and fresh resumes need no special casing.
func loadCheckpoint(path string) (*netCheckpoint, *sched.Checkpoint, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("ansor: checkpoint %s: %w", path, err)
	}
	var c netCheckpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, nil, fmt.Errorf("ansor: checkpoint %s: %w", path, err)
	}
	if len(c.Sched) == 0 {
		return nil, nil, fmt.Errorf("ansor: checkpoint %s: no scheduler state", path)
	}
	sc, err := sched.UnmarshalCheckpoint(c.Sched)
	if err != nil {
		return nil, nil, fmt.Errorf("ansor: checkpoint %s: %w", path, err)
	}
	return &c, sc, nil
}

// writeCheckpoint snapshots the scheduler beside the log, atomically
// (temp file + rename), so a crash mid-write never corrupts the
// previous checkpoint.
func writeCheckpoint(path string, meta netCheckpoint, s *sched.Scheduler) error {
	blob, err := s.Checkpoint().Marshal()
	if err != nil {
		return fmt.Errorf("ansor: checkpoint %s: %w", path, err)
	}
	meta.Sched = blob
	data, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("ansor: checkpoint %s: %w", path, err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("ansor: checkpoint %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ansor: checkpoint %s: %w", path, err)
	}
	return nil
}
