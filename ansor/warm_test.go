package ansor

import (
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/measure"
	"repro/internal/regserver"
)

// warmOutcome is everything the determinism contract compares.
type warmOutcome struct {
	preFP   uint64 // model fingerprint right after warm start, before round 1
	outcome tuneOutcome
}

func runWarmTune(t *testing.T, target Target, seed int64, trials, workers int, warmFrom string) warmOutcome {
	t.Helper()
	tuner, err := NewTuner(NewTask("mm", persistDAG(t), target), TuningOptions{
		Trials: trials, MeasuresPerRound: 16, Seed: seed, Workers: workers,
		WarmStartFrom: warmFrom,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := warmOutcome{preFP: tuner.ModelFingerprint()}
	best, err := tuner.Tune()
	if err != nil {
		t.Fatal(err)
	}
	if err := tuner.Close(); err != nil {
		t.Fatal(err)
	}
	out.outcome = tuneOutcome{
		sig:      best.State.Signature(),
		seconds:  best.Seconds,
		modelFP:  tuner.ModelFingerprint(),
		measured: tuner.Trials(),
	}
	for _, h := range tuner.History() {
		out.outcome.history = append(out.outcome.history, struct {
			trials int
			best   float64
		}{h.Trials, h.BestTime})
	}
	return out
}

// TestWarmFileVsServerBitIdentical is the tentpole determinism proof:
// warm-starting from a file and from a registry server holding the very
// same records yields bit-identical tuning runs — equal model
// fingerprints before round one, equal history curves, equal bests —
// at any worker count.
func TestWarmFileVsServerBitIdentical(t *testing.T) {
	dir := t.TempDir()
	seedLog := filepath.Join(dir, "seed.json")
	target := TargetIntelCPU(true)
	runPersistTune(t, 32, 0, seedLog, "")

	// One server accumulates the log; its best set, saved to a file, is
	// the same record set the server's query serves.
	srv := regserver.New(nil)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	l, err := measure.LoadFile(seedLog)
	if err != nil {
		t.Fatal(err)
	}
	cl := regserver.NewClient(hs.URL)
	if _, err := cl.AddLog(l); err != nil {
		t.Fatal(err)
	}
	snapFile := filepath.Join(dir, "snapshot.json")
	reg, err := regserver.LoadRegistry(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.SaveFile(snapFile); err != nil {
		t.Fatal(err)
	}

	fromFile := runWarmTune(t, target, 11, 32, 0, snapFile)
	if fromFile.preFP == 0 {
		t.Log("note: pre-tune fingerprint is the untrained hash only if warm start absorbed nothing")
	}
	for _, workers := range []int{0, 1, 8} {
		fromServer := runWarmTune(t, target, 11, 32, workers, hs.URL)
		if fromServer.preFP != fromFile.preFP {
			t.Errorf("workers=%d: warm-started models diverged before round 1: %x vs %x",
				workers, fromServer.preFP, fromFile.preFP)
		}
		if fromServer.outcome.sig != fromFile.outcome.sig ||
			fromServer.outcome.seconds != fromFile.outcome.seconds ||
			fromServer.outcome.modelFP != fromFile.outcome.modelFP {
			t.Errorf("workers=%d: warm-from-server run diverged from warm-from-file", workers)
		}
		if len(fromServer.outcome.history) != len(fromFile.outcome.history) {
			t.Fatalf("workers=%d: history lengths diverged: %d vs %d",
				workers, len(fromServer.outcome.history), len(fromFile.outcome.history))
		}
		for i := range fromServer.outcome.history {
			if fromServer.outcome.history[i] != fromFile.outcome.history[i] {
				t.Errorf("workers=%d: history[%d] diverged", workers, i)
			}
		}
	}

	// The warm start absorbed real history: the model is trained before
	// the first round (a cold tuner's pre-tune fingerprint differs).
	cold := runWarmTune(t, target, 11, 32, 0, "")
	if cold.preFP == fromFile.preFP {
		t.Error("warm-started pre-tune model should differ from the cold untrained model")
	}
}

// TestCrossTargetWarmStart: a job on avx512 warm-started purely from
// avx2 history (sibling target) is deterministic at any worker count,
// absorbs the records as train-only (no inherited best), and — the §5.2
// transfer claim at reproduction scale — does not degrade the final
// best versus a cold start on a majority of seeds.
func TestCrossTargetWarmStart(t *testing.T) {
	dir := t.TempDir()
	avx2Log := filepath.Join(dir, "avx2.json")

	// Build sibling history on avx2.
	tuner, err := NewTuner(NewTask("mm", persistDAG(t), TargetIntelCPU(false)), TuningOptions{
		Trials: 32, MeasuresPerRound: 16, Seed: 5, RecordTo: avx2Log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tuner.Tune(); err != nil {
		t.Fatal(err)
	}
	if err := tuner.Close(); err != nil {
		t.Fatal(err)
	}

	target := TargetIntelCPU(true)
	base := runWarmTune(t, target, 21, 32, 1, avx2Log)
	if base.preFP == runWarmTune(t, target, 21, 0, 1, "").preFP && base.preFP == 0 {
		t.Fatal("cross-target warm start absorbed nothing")
	}
	// Transferred records never claim a best: before round one the best
	// time must still be unset (train-only pool exclusion). History
	// starts at the first round's own measurements.
	warmTuner, err := NewTuner(NewTask("mm", persistDAG(t), target), TuningOptions{
		Trials: 16, Seed: 21, WarmStartFrom: avx2Log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warmTuner.Best(); err == nil {
		t.Error("sibling-target records must not enter the best pool before any native measurement")
	}

	// Deterministic at any worker count.
	for _, workers := range []int{4, 8} {
		got := runWarmTune(t, target, 21, 32, workers, avx2Log)
		if got.preFP != base.preFP || got.outcome.sig != base.outcome.sig ||
			got.outcome.seconds != base.outcome.seconds || got.outcome.modelFP != base.outcome.modelFP {
			t.Errorf("workers=%d: cross-target warm start is nondeterministic", workers)
		}
	}

	// Majority-of-seeds: warm never degrades the final best vs cold.
	if testing.Short() {
		return // the full-budget seed sweep runs in the non-short suite
	}
	wins := 0
	seeds := []int64{21, 22, 23}
	for _, seed := range seeds {
		cold := runWarmTune(t, target, seed, 48, 0, "")
		warm := runWarmTune(t, target, seed, 48, 0, avx2Log)
		t.Logf("seed %d: cold %.4g warm %.4g", seed, cold.outcome.seconds, warm.outcome.seconds)
		if warm.outcome.seconds <= cold.outcome.seconds {
			wins++
		}
	}
	if wins < 2 {
		t.Errorf("cross-target warm start degraded the final best on %d/%d seeds", len(seeds)-wins, len(seeds))
	}
}
