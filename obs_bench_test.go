package repro

import (
	"io"
	"testing"

	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/sketch"
)

// BenchmarkTuningRoundEvents measures what the observability layer adds
// to a full search round: off = no observer (the shipped default),
// on = a streaming JSONL sink plus the round/phase latency histograms.
// The two are required to produce bit-identical search output (pinned
// in ansor/); this benchmark pins the price of narration — it should be
// lost in the noise of a round's evolve/score/measure work.
func BenchmarkTuningRoundEvents(b *testing.B) {
	run := func(b *testing.B, o *obs.Observer) {
		d := convDAG()
		ms := measure.New(sim.IntelXeon(), 0.02, 1)
		p, err := policy.New(policy.Task{Name: "conv", DAG: d, Target: sketch.CPUTarget()},
			policy.DefaultOptions(), ms)
		if err != nil {
			b.Fatal(err)
		}
		p.Obs = o
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.SearchRound(16)
		}
	}
	b.Run("events=off", func(b *testing.B) { run(b, nil) })
	b.Run("events=on", func(b *testing.B) {
		sink := obs.NewStreamSink(io.Discard, 1<<16)
		defer sink.Close()
		run(b, obs.New(sink, obs.NewRegistry()))
	})
}
